lib/linalg/su3.ml: Array Cplx Format Util
