lib/linalg/cplx.mli: Format
