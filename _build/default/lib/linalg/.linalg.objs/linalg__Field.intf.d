lib/linalg/field.mli: Bigarray Cplx Util
