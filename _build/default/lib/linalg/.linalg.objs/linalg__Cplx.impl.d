lib/linalg/cplx.ml: Format
