lib/linalg/field.ml: Array Array1 Bigarray Cplx Float Util
