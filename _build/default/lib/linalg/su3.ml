(* SU(3) matrices stored as flat float arrays of length 18:
   element (row, col) occupies indices 2*(3*row+col) (real) and
   2*(3*row+col)+1 (imaginary). Row-major, matching the gauge-link
   storage in Lattice.Gauge so links can be viewed without copies. *)

type t = float array

let idx row col = 2 * ((3 * row) + col)

let zero () = Array.make 18 0.

let id () =
  let m = zero () in
  m.(idx 0 0) <- 1.;
  m.(idx 1 1) <- 1.;
  m.(idx 2 2) <- 1.;
  m

let copy = Array.copy

let get m row col = Cplx.make m.(idx row col) m.(idx row col + 1)

let set m row col (c : Cplx.t) =
  m.(idx row col) <- c.Cplx.re;
  m.(idx row col + 1) <- c.Cplx.im

let of_fun f =
  let m = zero () in
  for row = 0 to 2 do
    for col = 0 to 2 do
      set m row col (f row col)
    done
  done;
  m

(* c = a * b, all distinct or aliased safely (writes into fresh array). *)
let mul a b =
  let c = zero () in
  for row = 0 to 2 do
    for col = 0 to 2 do
      let re = ref 0. and im = ref 0. in
      for k = 0 to 2 do
        let ar = a.(idx row k) and ai = a.(idx row k + 1) in
        let br = b.(idx k col) and bi = b.(idx k col + 1) in
        re := !re +. ((ar *. br) -. (ai *. bi));
        im := !im +. ((ar *. bi) +. (ai *. br))
      done;
      c.(idx row col) <- !re;
      c.(idx row col + 1) <- !im
    done
  done;
  c

let adj a =
  let c = zero () in
  for row = 0 to 2 do
    for col = 0 to 2 do
      c.(idx row col) <- a.(idx col row);
      c.(idx row col + 1) <- -.a.(idx col row + 1)
    done
  done;
  c

let add a b = Array.init 18 (fun i -> a.(i) +. b.(i))
let sub a b = Array.init 18 (fun i -> a.(i) -. b.(i))
let scale s a = Array.map (fun x -> s *. x) a

let cscale (c : Cplx.t) a =
  let m = zero () in
  for e = 0 to 8 do
    let re = a.(2 * e) and im = a.((2 * e) + 1) in
    m.(2 * e) <- (c.Cplx.re *. re) -. (c.Cplx.im *. im);
    m.((2 * e) + 1) <- (c.Cplx.re *. im) +. (c.Cplx.im *. re)
  done;
  m

let trace a =
  Cplx.make
    (a.(idx 0 0) +. a.(idx 1 1) +. a.(idx 2 2))
    (a.(idx 0 0 + 1) +. a.(idx 1 1 + 1) +. a.(idx 2 2 + 1))

let re_trace a = a.(idx 0 0) +. a.(idx 1 1) +. a.(idx 2 2)

let frobenius_dist a b =
  let acc = ref 0. in
  for i = 0 to 17 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let determinant a =
  let open Cplx in
  let g = get a in
  let minor r1 r2 c1 c2 = sub (mul (g r1 c1) (g r2 c2)) (mul (g r1 c2) (g r2 c1)) in
  add
    (sub (mul (g 0 0) (minor 1 2 1 2)) (mul (g 0 1) (minor 1 2 0 2)))
    (mul (g 0 2) (minor 1 2 0 1))

(* mul_vec: w = m * v where v, w are 3-component complex vectors stored
   as length-6 float arrays [re0; im0; re1; im1; re2; im2]. *)
let mul_vec m v =
  let w = Array.make 6 0. in
  for row = 0 to 2 do
    let re = ref 0. and im = ref 0. in
    for k = 0 to 2 do
      let mr = m.(idx row k) and mi = m.(idx row k + 1) in
      let vr = v.(2 * k) and vi = v.((2 * k) + 1) in
      re := !re +. ((mr *. vr) -. (mi *. vi));
      im := !im +. ((mr *. vi) +. (mi *. vr))
    done;
    w.(2 * row) <- !re;
    w.((2 * row) + 1) <- !im
  done;
  w

let adj_mul_vec m v =
  let w = Array.make 6 0. in
  for row = 0 to 2 do
    let re = ref 0. and im = ref 0. in
    for k = 0 to 2 do
      (* (m^dag)_{row,k} = conj m_{k,row} *)
      let mr = m.(idx k row) and mi = -.m.(idx k row + 1) in
      let vr = v.(2 * k) and vi = v.((2 * k) + 1) in
      re := !re +. ((mr *. vr) -. (mi *. vi));
      im := !im +. ((mr *. vi) +. (mi *. vr))
    done;
    w.(2 * row) <- !re;
    w.((2 * row) + 1) <- !im
  done;
  w

(* Project back onto SU(3) by Gram-Schmidt on the first two rows and
   completing the third as the conjugate cross product. Standard cure
   for rounding drift in long Monte Carlo runs. *)
let reunitarize m =
  let u = copy m in
  let row_get r = Array.init 6 (fun i -> u.(idx r (i / 2) + (i mod 2))) in
  let row_set r v =
    for col = 0 to 2 do
      u.(idx r col) <- v.(2 * col);
      u.(idx r col + 1) <- v.((2 * col) + 1)
    done
  in
  let dotc a b =
    (* <a|b> = sum conj(a_i) b_i *)
    let re = ref 0. and im = ref 0. in
    for k = 0 to 2 do
      let ar = a.(2 * k) and ai = a.((2 * k) + 1) in
      let br = b.(2 * k) and bi = b.((2 * k) + 1) in
      re := !re +. ((ar *. br) +. (ai *. bi));
      im := !im +. ((ar *. bi) -. (ai *. br))
    done;
    Cplx.make !re !im
  in
  let normalize v =
    let n = sqrt (Cplx.re (dotc v v)) in
    if n = 0. then invalid_arg "Su3.reunitarize: zero row";
    Array.map (fun x -> x /. n) v
  in
  let r0 = normalize (row_get 0) in
  let r1 = row_get 1 in
  let proj = dotc r0 r1 in
  let r1 =
    Array.init 6 (fun i ->
        let k = i / 2 in
        let r0r = r0.(2 * k) and r0i = r0.((2 * k) + 1) in
        if i mod 2 = 0 then r1.(i) -. ((proj.Cplx.re *. r0r) -. (proj.Cplx.im *. r0i))
        else r1.(i) -. ((proj.Cplx.re *. r0i) +. (proj.Cplx.im *. r0r)))
  in
  let r1 = normalize r1 in
  (* r2 = conj(r0 x r1) *)
  let cross_conj a b =
    let c k1 k2 =
      let open Cplx in
      conj
        (sub
           (mul (make a.(2 * k1) a.((2 * k1) + 1)) (make b.(2 * k2) b.((2 * k2) + 1)))
           (mul (make a.(2 * k2) a.((2 * k2) + 1)) (make b.(2 * k1) b.((2 * k1) + 1))))
    in
    let e0 = c 1 2 and e1 = c 2 0 and e2 = c 0 1 in
    [| e0.Cplx.re; e0.Cplx.im; e1.Cplx.re; e1.Cplx.im; e2.Cplx.re; e2.Cplx.im |]
  in
  let r2 = cross_conj r0 r1 in
  row_set 0 r0;
  row_set 1 r1;
  row_set 2 r2;
  u

let is_unitary ?(eps = 1e-10) m =
  frobenius_dist (mul m (adj m)) (id ()) <= eps

let is_special_unitary ?(eps = 1e-10) m =
  is_unitary ~eps m && Cplx.abs (Cplx.sub (determinant m) Cplx.one) <= eps

(* Random SU(3) close to the identity: exponentiate a small random
   traceless anti-hermitian matrix via reunitarized first-order form.
   eps controls the spread; eps >= 1 gives an essentially random walk
   step used to build "hot" starts. *)
let random_near_identity rng ~eps =
  (* H = eps * (G - G^dag)/2 - i.e. anti-hermitian; U = reunitarize(1 + H) *)
  let g = of_fun (fun _ _ -> Cplx.make (Util.Rng.gaussian rng) (Util.Rng.gaussian rng)) in
  let h = scale (0.5 *. eps) (sub g (adj g)) in
  (* remove trace to stay in su(3) *)
  let tr = trace h in
  let third = Cplx.scale (1. /. 3.) tr in
  let h = copy h in
  for d = 0 to 2 do
    h.(idx d d) <- h.(idx d d) -. third.Cplx.re;
    h.(idx d d + 1) <- h.(idx d d + 1) -. third.Cplx.im
  done;
  reunitarize (add (id ()) h)

let random rng =
  (* Product of several spread-1 steps loses all memory of the identity. *)
  let u = ref (random_near_identity rng ~eps:1.) in
  for _ = 1 to 3 do
    u := mul !u (random_near_identity rng ~eps:1.)
  done;
  !u

(* SU(2) subgroup embedding for the Cabibbo-Marinari heatbath. An SU(2)
   element (a0, a1, a2, a3) with a0^2+|a|^2 = 1 embeds into rows/cols
   (p, q) of an SU(3) identity. *)
let embed_su2 ~p ~q (a0, a1, a2, a3) =
  let m = id () in
  set m p p (Cplx.make a0 a3);
  set m p q (Cplx.make a2 a1);
  set m q p (Cplx.make (-.a2) a1);
  set m q q (Cplx.make a0 (-.a3));
  m

(* Extract the SU(2)-like content of rows/cols (p,q): returns the
   coefficients (a0,a1,a2,a3) of the projection of the 2x2 submatrix
   onto the quaternion basis, unnormalized. *)
let extract_su2 ~p ~q m =
  let a = get m p p and b = get m p q and c = get m q p and d = get m q q in
  let a0 = 0.5 *. (a.Cplx.re +. d.Cplx.re) in
  let a3 = 0.5 *. (a.Cplx.im -. d.Cplx.im) in
  let a2 = 0.5 *. (b.Cplx.re -. c.Cplx.re) in
  let a1 = 0.5 *. (b.Cplx.im +. c.Cplx.im) in
  (a0, a1, a2, a3)

let pp ppf m =
  for row = 0 to 2 do
    Format.fprintf ppf "[";
    for col = 0 to 2 do
      Format.fprintf ppf " %a" Cplx.pp (get m row col)
    done;
    Format.fprintf ppf " ]@."
  done
