(** Flat float64 Bigarray vectors (fermion-field storage) and the
    BLAS-1 kernels of the CG solver. Interleaved complex layout:
    element [2k] is the real part and [2k+1] the imaginary part of
    component k. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Zero-initialized vector of [n] floats. *)

val length : t -> int
val copy : t -> t
val blit : t -> t -> unit
val fill : t -> float -> unit
val of_array : float array -> t
val to_array : t -> float array

val axpy : float -> t -> t -> unit
(** [axpy a x y]: y <- y + a·x. *)

val xpay : t -> float -> t -> unit
(** [xpay x a y]: y <- x + a·y. *)

val scale : float -> t -> unit

val sub : t -> t -> t -> unit
(** [sub x y z]: z <- x − y. *)

val caxpy : float * float -> t -> t -> unit
(** [caxpy (re, im) x y]: y <- y + a·x with complex a. *)

val norm2 : t -> float
val norm : t -> float

val dot_re : t -> t -> float
(** Real part of the complex inner product. *)

val cdot : t -> t -> Cplx.t
(** Complex inner product sum conj(x_k)·y_k. *)

val gaussian : Util.Rng.t -> t -> unit
(** Fill with unit-variance Gaussian noise. *)

val map2 : (float -> float -> float) -> t -> t -> t -> unit
val max_abs_diff : t -> t -> float

(** 16-bit fixed-point storage with per-block float32 norms — the
    paper's half-precision format for the inner CG. *)
module Half : sig
  type h = {
    data : (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t;
    norms : (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t;
    block : int;
  }

  val max_q : float

  val create : block:int -> int -> h
  (** [create ~block n]: [block] floats share one norm; block ∣ n. *)

  val length : h -> int
  val encode : t -> h -> unit
  val decode : h -> t -> unit

  val round_trip : t -> block:int -> t
  (** Encode then decode — the quantization the inner solver sees. *)
end
