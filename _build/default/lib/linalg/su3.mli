(** SU(3) (and general 3×3 complex) matrices as flat length-18 float
    arrays, row-major, interleaved re/im — the same layout as gauge-link
    storage so links can be processed without conversion. *)

type t = float array

val idx : int -> int -> int
(** [idx row col] is the array offset of the real part of element
    (row, col). *)

val zero : unit -> t
val id : unit -> t
val copy : t -> t
val get : t -> int -> int -> Cplx.t
val set : t -> int -> int -> Cplx.t -> unit
val of_fun : (int -> int -> Cplx.t) -> t
val mul : t -> t -> t
val adj : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val cscale : Cplx.t -> t -> t
val trace : t -> Cplx.t
val re_trace : t -> float
val frobenius_dist : t -> t -> float
val determinant : t -> Cplx.t

val mul_vec : t -> float array -> float array
(** [mul_vec m v] with [v] a 3-component complex vector as 6 floats. *)

val adj_mul_vec : t -> float array -> float array

val reunitarize : t -> t
(** Gram–Schmidt projection back onto SU(3). *)

val is_unitary : ?eps:float -> t -> bool
val is_special_unitary : ?eps:float -> t -> bool

val random_near_identity : Util.Rng.t -> eps:float -> t
(** Random SU(3) element near the identity; [eps] sets the spread. *)

val random : Util.Rng.t -> t
(** Essentially Haar-spread random SU(3) element (for hot starts). *)

val embed_su2 : p:int -> q:int -> float * float * float * float -> t
(** Embed an SU(2) element (a0,a1,a2,a3), a0²+a·a=1, into the (p,q)
    subgroup of SU(3). *)

val extract_su2 : p:int -> q:int -> t -> float * float * float * float
(** Project the (p,q) 2×2 submatrix onto the quaternion basis
    (unnormalized) — the Cabibbo–Marinari staple reduction. *)

val pp : Format.formatter -> t -> unit
