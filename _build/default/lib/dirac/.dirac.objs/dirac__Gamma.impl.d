lib/dirac/gamma.ml: Array Bigarray Linalg List
