lib/dirac/mobius.mli: Lattice Linalg
