lib/dirac/gamma.mli: Linalg
