lib/dirac/mobius.ml: Array Array1 Bigarray Gamma Lattice Linalg Wilson
