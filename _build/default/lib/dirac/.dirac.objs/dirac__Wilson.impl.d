lib/dirac/wilson.ml: Array Array1 Bigarray Gamma Lattice Linalg
