lib/dirac/flops.ml:
