lib/dirac/wilson.mli: Lattice Linalg
