(* Euclidean gamma matrices in the DeGrand-Rossi basis, the one used by
   MILC/QUDA. Every gamma_mu has exactly one nonzero entry per row, so
   each is stored as a spin permutation plus a complex phase:
   (gamma_mu psi)_s = phase_mu(s) * psi_(perm_mu(s)). *)

module Cplx = Linalg.Cplx

type action = { perm : int array; phase : Cplx.t array }

let i = Cplx.i
let mi = Cplx.neg Cplx.i
let one = Cplx.one
let mone = Cplx.neg Cplx.one

(* gamma_x, gamma_y, gamma_z, gamma_t  (mu = 0,1,2,3) *)
let gammas =
  [|
    { perm = [| 3; 2; 1; 0 |]; phase = [| i; i; mi; mi |] };
    { perm = [| 3; 2; 1; 0 |]; phase = [| mone; one; one; mone |] };
    { perm = [| 2; 3; 0; 1 |]; phase = [| i; mi; mi; i |] };
    { perm = [| 2; 3; 0; 1 |]; phase = [| one; one; one; one |] };
  |]

(* gamma_5 = gamma_x gamma_y gamma_z gamma_t: computed below and
   verified diagonal at module initialization. *)

let to_matrix a =
  Array.init 4 (fun row ->
      Array.init 4 (fun col -> if a.perm.(row) = col then a.phase.(row) else Cplx.zero))

let mat_mul a b =
  Array.init 4 (fun row ->
      Array.init 4 (fun col ->
          let acc = ref Cplx.zero in
          for k = 0 to 3 do
            acc := Cplx.add !acc (Cplx.mul a.(row).(k) b.(k).(col))
          done;
          !acc))

let gamma5_matrix =
  let m = to_matrix gammas.(0) in
  let m = mat_mul m (to_matrix gammas.(1)) in
  let m = mat_mul m (to_matrix gammas.(2)) in
  mat_mul m (to_matrix gammas.(3))

let gamma5_diag =
  Array.init 4 (fun s ->
      for s' = 0 to 3 do
        if s' <> s && not (Cplx.equal gamma5_matrix.(s).(s') Cplx.zero) then
          failwith "Gamma: gamma5 not diagonal in this basis"
      done;
      let d = gamma5_matrix.(s).(s) in
      if Cplx.equal d Cplx.one then 1.
      else if Cplx.equal d mone then -1.
      else failwith "Gamma: gamma5 diagonal not +-1")

let gamma5 =
  { perm = [| 0; 1; 2; 3 |]; phase = Array.map (fun d -> Cplx.make d 0.) gamma5_diag }

(* Spins with gamma5 = +1 are the "plus-chirality" components that the
   domain-wall projector P+ keeps. *)
let chirality_plus_spins =
  Array.to_list gamma5_diag
  |> List.mapi (fun s d -> (s, d))
  |> List.filter_map (fun (s, d) -> if d > 0. then Some s else None)
  |> Array.of_list

let chirality_minus_spins =
  Array.to_list gamma5_diag
  |> List.mapi (fun s d -> (s, d))
  |> List.filter_map (fun (s, d) -> if d < 0. then Some s else None)
  |> Array.of_list

(* ---- Actions on packed spinors ----
   A spinor at one site is 24 floats: spin-major, color inner,
   interleaved re/im: offset = (spin*3 + color)*2. These helpers act on
   a [Linalg.Field.t] at a given site base offset. *)

let floats_per_site = 24

let spinor_offset ~site = site * floats_per_site

(* dst_site <- gamma_mu src_site (distinct fields or distinct sites). *)
let apply_site a (src : Linalg.Field.t) src_base (dst : Linalg.Field.t) dst_base =
  for s = 0 to 3 do
    let sp = a.perm.(s) in
    let ph = a.phase.(s) in
    for c = 0 to 2 do
      let o = ((sp * 3) + c) * 2 in
      let re = Bigarray.Array1.unsafe_get src (src_base + o) in
      let im = Bigarray.Array1.unsafe_get src (src_base + o + 1) in
      let d = ((s * 3) + c) * 2 in
      Bigarray.Array1.unsafe_set dst (dst_base + d)
        ((ph.Cplx.re *. re) -. (ph.Cplx.im *. im));
      Bigarray.Array1.unsafe_set dst (dst_base + d + 1)
        ((ph.Cplx.re *. im) +. (ph.Cplx.im *. re))
    done
  done

(* Whole-field gamma5: dst <- gamma5 src (may alias). *)
let apply_gamma5 (src : Linalg.Field.t) (dst : Linalg.Field.t) =
  let n = Linalg.Field.length src / floats_per_site in
  if Linalg.Field.length dst <> Linalg.Field.length src then
    invalid_arg "Gamma.apply_gamma5: length mismatch";
  for site = 0 to n - 1 do
    let base = site * floats_per_site in
    for s = 0 to 3 do
      let d = gamma5_diag.(s) in
      if d < 0. then
        for c = 0 to 2 do
          let o = base + (((s * 3) + c) * 2) in
          Bigarray.Array1.unsafe_set dst o
            (-.Bigarray.Array1.unsafe_get src o);
          Bigarray.Array1.unsafe_set dst (o + 1)
            (-.Bigarray.Array1.unsafe_get src (o + 1))
        done
      else if dst != src then
        for c = 0 to 2 do
          let o = base + (((s * 3) + c) * 2) in
          Bigarray.Array1.unsafe_set dst o (Bigarray.Array1.unsafe_get src o);
          Bigarray.Array1.unsafe_set dst (o + 1)
            (Bigarray.Array1.unsafe_get src (o + 1))
        done
    done
  done

(* gamma_mu as a dense 4x4 complex matrix, for tests and contractions. *)
let matrix mu = to_matrix gammas.(mu)

let anticommutator_check () =
  (* {gamma_mu, gamma_nu} = 2 delta_munu — used by the test suite. *)
  let id4 =
    Array.init 4 (fun r -> Array.init 4 (fun c -> if r = c then Cplx.one else Cplx.zero))
  in
  let add m1 m2 = Array.init 4 (fun r -> Array.init 4 (fun c -> Cplx.add m1.(r).(c) m2.(r).(c))) in
  let ok = ref true in
  for mu = 0 to 3 do
    for nu = 0 to 3 do
      let anti =
        add
          (mat_mul (to_matrix gammas.(mu)) (to_matrix gammas.(nu)))
          (mat_mul (to_matrix gammas.(nu)) (to_matrix gammas.(mu)))
      in
      let expect s = if mu = nu then Cplx.scale 2. id4.(s).(s) else Cplx.zero in
      for s = 0 to 3 do
        for s' = 0 to 3 do
          let want = if s = s' then expect s else Cplx.zero in
          if not (Cplx.equal anti.(s).(s') want) then ok := false
        done
      done
    done
  done;
  !ok
