(** Euclidean gamma matrices (DeGrand–Rossi basis) as spin permutations
    with phases, plus packed-spinor helpers. A spinor site is 24 floats:
    spin-major, color inner, interleaved re/im. *)

module Cplx = Linalg.Cplx

type action = { perm : int array; phase : Cplx.t array }

val gammas : action array
(** gamma_mu for mu = 0..3 (x, y, z, t). *)

val gamma5 : action
val gamma5_diag : float array
(** Diagonal of gamma5 (±1 per spin) — diagonal in this basis. *)

val chirality_plus_spins : int array
(** Spins with gamma5 = +1 (kept by P+). *)

val chirality_minus_spins : int array

val floats_per_site : int
(** 24 = 4 spins × 3 colors × 2. *)

val spinor_offset : site:int -> int

val apply_site :
  action -> Linalg.Field.t -> int -> Linalg.Field.t -> int -> unit
(** [apply_site g src src_base dst dst_base] applies the 4×4 spin matrix
    at one site (base offsets in floats). *)

val apply_gamma5 : Linalg.Field.t -> Linalg.Field.t -> unit
(** Whole-field gamma5; src and dst may alias. *)

val matrix : int -> Cplx.t array array
(** Dense 4×4 matrix of gamma_mu, for tests and contractions. *)

val to_matrix : action -> Cplx.t array array
val mat_mul : Cplx.t array array -> Cplx.t array array -> Cplx.t array array
val gamma5_matrix : Cplx.t array array

val anticommutator_check : unit -> bool
(** Verifies {gamma_mu, gamma_nu} = 2 delta_munu. *)
