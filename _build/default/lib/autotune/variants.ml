(* Launch-parameter spaces for the real OCaml kernels, so the
   autotuner has genuine knobs to search — the analogue of CUDA block
   size / grid shape for this implementation:

   - BLAS-1 kernels: manual unroll depth.
   - Wilson stencil: site-traversal tile size (temporal blocking of
     the site loop changes the cache behaviour of neighbour reads).

   Each variant is a drop-in replacement verified identical by the
   test suite; only speed differs. *)

module Field = Linalg.Field
open Bigarray

(* ---- axpy unroll variants ---- *)

let axpy_plain alpha (x : Field.t) (y : Field.t) =
  for i = 0 to Field.length x - 1 do
    Array1.unsafe_set y i (Array1.unsafe_get y i +. (alpha *. Array1.unsafe_get x i))
  done

let axpy_unroll4 alpha (x : Field.t) (y : Field.t) =
  let n = Field.length x in
  let n4 = n - (n mod 4) in
  let i = ref 0 in
  while !i < n4 do
    let i0 = !i in
    Array1.unsafe_set y i0 (Array1.unsafe_get y i0 +. (alpha *. Array1.unsafe_get x i0));
    Array1.unsafe_set y (i0 + 1)
      (Array1.unsafe_get y (i0 + 1) +. (alpha *. Array1.unsafe_get x (i0 + 1)));
    Array1.unsafe_set y (i0 + 2)
      (Array1.unsafe_get y (i0 + 2) +. (alpha *. Array1.unsafe_get x (i0 + 2)));
    Array1.unsafe_set y (i0 + 3)
      (Array1.unsafe_get y (i0 + 3) +. (alpha *. Array1.unsafe_get x (i0 + 3)));
    i := i0 + 4
  done;
  for j = n4 to n - 1 do
    Array1.unsafe_set y j (Array1.unsafe_get y j +. (alpha *. Array1.unsafe_get x j))
  done

let axpy_unroll8 alpha (x : Field.t) (y : Field.t) =
  let n = Field.length x in
  let n8 = n - (n mod 8) in
  let i = ref 0 in
  while !i < n8 do
    for k = 0 to 7 do
      let j = !i + k in
      Array1.unsafe_set y j (Array1.unsafe_get y j +. (alpha *. Array1.unsafe_get x j))
    done;
    i := !i + 8
  done;
  for j = n8 to n - 1 do
    Array1.unsafe_set y j (Array1.unsafe_get y j +. (alpha *. Array1.unsafe_get x j))
  done

let axpy_variants : (string * (float -> Field.t -> Field.t -> unit)) list =
  [ ("plain", axpy_plain); ("unroll4", axpy_unroll4); ("unroll8", axpy_unroll8) ]

(* ---- stencil traversal variants ---- *)

(* Site orderings for the Wilson hop: natural lexicographic, or tiles
   of [tile] consecutive sites interleaved across the volume (a poor
   man's launch-geometry knob). *)
let site_order_natural n = Array.init n Fun.id

let site_order_tiled ~tile n =
  let out = Array.make n 0 in
  let idx = ref 0 in
  let n_tiles = (n + tile - 1) / tile in
  for t = 0 to n_tiles - 1 do
    let lo = t * tile in
    let hi = min n (lo + tile) in
    for s = lo to hi - 1 do
      out.(!idx) <- s;
      incr idx
    done
  done;
  out

let site_order_strided ~stride n =
  let out = Array.make n 0 in
  let idx = ref 0 in
  for r = 0 to stride - 1 do
    let s = ref r in
    while !s < n do
      out.(!idx) <- !s;
      incr idx;
      s := !s + stride
    done
  done;
  out

let hop_orders n =
  [
    ("natural", site_order_natural n);
    ("tile256", site_order_tiled ~tile:256 n);
    ("tile1024", site_order_tiled ~tile:1024 n);
    ("stride2", site_order_strided ~stride:2 n);
  ]

(* Tune the hop traversal for a kernel on a concrete field pair,
   returning the winning order's label and site array. *)
let tune_hop tuner (w : Dirac.Wilson.t) ~(src : Field.t) ~(dst : Field.t)
    ~signature =
  let n = Field.length dst / Dirac.Wilson.floats_per_site in
  let orders = hop_orders n in
  let winner =
    Tuner.tune tuner ~kernel:"wilson_hop" ~signature
      (List.map
         (fun (label, sites) ->
           Tuner.candidate label (fun () ->
               Dirac.Wilson.hop_sites w ~sites ~src ~dst ()))
         orders)
  in
  (winner, List.assoc winner orders)

(* Tune axpy on vectors of a given size. *)
let tune_axpy tuner ~n =
  let x = Field.create n and y = Field.create n in
  Field.fill x 1.;
  let winner =
    Tuner.tune tuner ~kernel:"axpy" ~signature:(string_of_int n)
      (List.map
         (fun (label, f) -> Tuner.candidate label (fun () -> f 0.5 x y))
         axpy_variants)
  in
  (winner, List.assoc winner axpy_variants)
