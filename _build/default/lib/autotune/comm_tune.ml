(* Communication-policy autotuning (Sec. V): extend the autotuner "to
   include the concept of communication-policy tuning to pick the
   optimum communication approach for a given problem, at a given node
   count on a given target machine". The policy space is
   Machine.Policy.all; the measurement is the machine model's
   per-application time; winners are cached per
   (machine, problem, n_gpus) exactly like kernel launch parameters. *)

module Spec = Machine.Spec
module Policy = Machine.Policy
module Perf_model = Machine.Perf_model

type t = {
  cache : (string, Policy.t * Perf_model.result) Hashtbl.t;
  mutable tune_count : int;
  mutable hit_count : int;
}

let create () = { cache = Hashtbl.create 32; tune_count = 0; hit_count = 0 }

let key (m : Spec.t) (p : Perf_model.problem) ~n_gpus =
  Printf.sprintf "%s|%s|l5=%d|g=%d" m.Spec.name
    (String.concat "x" (Array.to_list (Array.map string_of_int p.Perf_model.dims)))
    p.Perf_model.l5 n_gpus

(* Best policy for a configuration; cached. Returns None if the GPU
   count admits no process grid. *)
let pick t (m : Spec.t) (p : Perf_model.problem) ~n_gpus =
  let k = key m p ~n_gpus in
  match Hashtbl.find_opt t.cache k with
  | Some (pol, r) ->
    t.hit_count <- t.hit_count + 1;
    Some (pol, r)
  | None ->
    let candidates = List.filter (fun pol -> Policy.available pol m) Policy.all in
    let results =
      List.filter_map
        (fun pol ->
          Option.map (fun r -> (pol, r)) (Perf_model.solver_performance m pol p ~n_gpus))
        candidates
    in
    (match results with
    | [] -> None
    | first :: rest ->
      t.tune_count <- t.tune_count + 1;
      let best =
        List.fold_left
          (fun ((_, br) as b) ((_, r) as c) ->
            if r.Perf_model.tflops_total > br.Perf_model.tflops_total then c else b)
          first rest
      in
      Hashtbl.replace t.cache k best;
      Some best)

(* Survey: winning policy for each (machine, gpu count) — shows the
   optimum strategy is machine- and scale-dependent, the reason the
   paper tunes it at runtime. *)
let survey t (m : Spec.t) (p : Perf_model.problem) ~gpu_counts =
  List.filter_map
    (fun n ->
      Option.map (fun (pol, r) -> (n, pol, r.Perf_model.tflops_total)) (pick t m p ~n_gpus:n))
    gpu_counts

let tune_count t = t.tune_count
let hit_count t = t.hit_count
