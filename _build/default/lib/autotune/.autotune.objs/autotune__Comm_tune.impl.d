lib/autotune/comm_tune.ml: Array Hashtbl List Machine Option Printf String
