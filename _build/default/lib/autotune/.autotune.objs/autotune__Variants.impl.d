lib/autotune/variants.ml: Array Array1 Bigarray Dirac Fun Linalg List Tuner
