lib/autotune/tuner.ml: Array Fun Hashtbl List Printf String Unix
