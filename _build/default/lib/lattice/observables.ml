(* Gauge observables beyond the plaquette: Wilson loops (the static
   quark potential's raw data), the Polyakov loop (deconfinement order
   parameter), and the clover field strength with its topological
   charge density. All gauge invariant — the test suite checks that
   explicitly against random gauge transformations. *)

module Su3 = Linalg.Su3
module Cplx = Linalg.Cplx

(* Ordered product of links along a straight path of [len] steps in
   direction [mu] starting at [site]. *)
let line field ~site ~mu ~len =
  let geom = Gauge.geom field in
  let acc = ref (Su3.id ()) in
  let x = ref site in
  for _ = 1 to len do
    acc := Su3.mul !acc (Gauge.get field !x mu);
    x := Geometry.fwd geom !x mu
  done;
  (!acc, !x)

(* R x T rectangular Wilson loop in the (mu, nu) plane at [site]:
   up r in mu, up t in nu, back r in mu (adjoint of the top edge),
   back t in nu (adjoint of the left edge). *)
let wilson_loop field ~site ~mu ~nu ~r ~t =
  let geom = Gauge.geom field in
  let l1, c1 = line field ~site ~mu ~len:r in
  let l2, _ = line field ~site:c1 ~mu:nu ~len:t in
  let top_left = ref site in
  for _ = 1 to t do
    top_left := Geometry.fwd geom !top_left nu
  done;
  let l3, _ = line field ~site:!top_left ~mu ~len:r in
  let l4, _ = line field ~site ~mu:nu ~len:t in
  Su3.mul (Su3.mul l1 l2) (Su3.mul (Su3.adj l3) (Su3.adj l4))

(* Average R x T Wilson loop over all sites and spatial plane pairs
   with time in the second direction, normalized to 1 on the cold
   configuration. *)
let average_wilson_loop field ~r ~t =
  let geom = Gauge.geom field in
  let acc = ref 0. in
  let count = ref 0 in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to 2 do
        acc := !acc +. Su3.re_trace (wilson_loop field ~site ~mu ~nu:3 ~r ~t);
        incr count
      done);
  !acc /. (3. *. float_of_int !count)

(* Polyakov loop: trace of the product of time links winding the
   lattice, averaged over space. *)
let polyakov_loop field =
  let geom = Gauge.geom field in
  let nt = Geometry.time_extent geom in
  let acc = ref Cplx.zero in
  let count = ref 0 in
  Geometry.iter_sites geom (fun site ->
      if (Geometry.coords geom site).(3) = 0 then begin
        let l, _ = line field ~site ~mu:3 ~len:nt in
        acc := Cplx.add !acc (Cplx.scale (1. /. 3.) (Su3.trace l));
        incr count
      end);
  Cplx.scale (1. /. float_of_int !count) !acc

(* Clover-averaged field strength F_munu(x): the four plaquette leaves
   based at x, one per quadrant of the (mu, nu) plane, all traversed
   with the same orientation. *)
let clover field ~site ~mu ~nu =
  let geom = Gauge.geom field in
  let u s d = Gauge.get field s d in
  let ud s d = Su3.adj (Gauge.get field s d) in
  let fwd s d = Geometry.fwd geom s d and bwd s d = Geometry.bwd geom s d in
  let x = site in
  let xpm = fwd x mu and xpn = fwd x nu in
  let xmm = bwd x mu and xmn = bwd x nu in
  let xmm_pn = fwd xmm nu in
  let xmm_mn = bwd xmm nu in
  let xpm_mn = bwd xpm nu in
  (* quadrant (+mu, +nu) *)
  let leaf1 = Su3.mul (Su3.mul (u x mu) (u xpm nu)) (Su3.mul (ud xpn mu) (ud x nu)) in
  (* quadrant (+nu, -mu) *)
  let leaf2 = Su3.mul (Su3.mul (u x nu) (ud xmm_pn mu)) (Su3.mul (ud xmm nu) (u xmm mu)) in
  (* quadrant (-mu, -nu) *)
  let leaf3 = Su3.mul (Su3.mul (ud xmm mu) (ud xmm_mn nu)) (Su3.mul (u xmm_mn mu) (u xmn nu)) in
  (* quadrant (-nu, +mu) *)
  let leaf4 = Su3.mul (Su3.mul (ud xmn nu) (u xmn mu)) (Su3.mul (u xpm_mn nu) (ud x mu)) in
  let q = Su3.add leaf1 (Su3.add leaf2 (Su3.add leaf3 leaf4)) in
  (* F = (Q - Q^dag)/8i, traceless *)
  let diff = Su3.sub q (Su3.adj q) in
  let tr = Su3.trace diff in
  let f = Su3.cscale (Cplx.make 0. (-0.125)) diff in
  let third = Cplx.scale (-0.125 /. 3.) (Cplx.mul Cplx.i tr) in
  (* subtract the trace part of (diff/8i) *)
  for d = 0 to 2 do
    f.(Su3.idx d d) <- f.(Su3.idx d d) +. third.Cplx.re;
    f.(Su3.idx d d + 1) <- f.(Su3.idx d d + 1) +. third.Cplx.im
  done;
  f

(* Action density E(x) = sum_{mu<nu} Re tr F_munu^2 (clover). *)
let energy_density field ~site =
  let acc = ref 0. in
  for mu = 0 to 2 do
    for nu = mu + 1 to 3 do
      let f = clover field ~site ~mu ~nu in
      acc := !acc +. Su3.re_trace (Su3.mul f f)
    done
  done;
  !acc

let average_energy_density field =
  let geom = Gauge.geom field in
  let acc = ref 0. in
  Geometry.iter_sites geom (fun site -> acc := !acc +. energy_density field ~site);
  !acc /. float_of_int (Geometry.volume geom)

(* Topological charge density from the clover field strength:
   q(x) = (1/32 pi^2) eps_{munurhosigma} tr[F_munu F_rhosigma]. *)
let topological_charge field =
  let geom = Gauge.geom field in
  let acc = ref 0. in
  (* eps terms: (0,1,2,3) permutations; use the three independent
     pairings with weight 2 each (munu)(rhosig): (01)(23), (02)(31),
     (03)(12) *)
  Geometry.iter_sites geom (fun site ->
      let f mu nu = clover field ~site ~mu ~nu in
      let term a b c d =
        Su3.re_trace (Su3.mul (f a b) (f c d))
      in
      acc :=
        !acc
        +. (term 0 1 2 3 -. term 0 2 1 3 +. term 0 3 1 2));
  !acc *. 8. /. (32. *. Float.pi *. Float.pi)
