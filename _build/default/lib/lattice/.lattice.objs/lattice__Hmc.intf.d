lib/lattice/hmc.mli: Gauge Geometry Linalg Util
