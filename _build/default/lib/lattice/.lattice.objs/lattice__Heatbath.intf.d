lib/lattice/heatbath.mli: Gauge Geometry Util
