lib/lattice/observables.ml: Array Float Gauge Geometry Linalg
