lib/lattice/domain.mli: Gauge Geometry Linalg
