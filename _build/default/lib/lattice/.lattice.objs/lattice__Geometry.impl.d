lib/lattice/geometry.ml: Array
