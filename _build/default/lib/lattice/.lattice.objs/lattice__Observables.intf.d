lib/lattice/observables.mli: Gauge Linalg
