lib/lattice/flow.mli: Gauge
