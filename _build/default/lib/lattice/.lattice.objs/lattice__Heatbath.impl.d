lib/lattice/heatbath.ml: Array Float Gauge Geometry Linalg List Util
