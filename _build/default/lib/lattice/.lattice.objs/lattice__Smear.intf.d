lib/lattice/smear.mli: Gauge Linalg
