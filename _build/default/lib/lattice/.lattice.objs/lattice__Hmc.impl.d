lib/lattice/hmc.ml: Array Float Gauge Geometry Linalg Smear Util
