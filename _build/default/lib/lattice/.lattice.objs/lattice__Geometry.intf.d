lib/lattice/geometry.mli:
