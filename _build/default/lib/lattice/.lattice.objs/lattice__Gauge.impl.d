lib/lattice/gauge.ml: Array Array1 Bigarray Geometry Linalg
