lib/lattice/gauge.mli: Geometry Linalg Util
