lib/lattice/flow.ml: Array Float Gauge Geometry Linalg List Observables Smear
