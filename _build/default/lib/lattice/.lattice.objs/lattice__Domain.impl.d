lib/lattice/domain.ml: Array Bigarray Gauge Geometry Linalg
