lib/lattice/smear.ml: Array Gauge Geometry Linalg
