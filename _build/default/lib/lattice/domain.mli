(** Domain decomposition over a 4D process grid: rank-local subgrids,
    ghost (halo) regions, and the neighbor tables that point boundary
    hops into them. The index machinery used by [Vrank] halo exchange. *)

type face = {
  mu : int;
  dir : int;  (** 0 = forward face, 1 = backward face *)
  send_sites : int array;
  ghost_base : int;
  neighbor : int;
}

type rank_geometry = {
  rank : int;
  coords : int array;
  local_dims : int array;
  local_volume : int;
  ext_volume : int;
  fwd : int array;
  bwd : int array;
  local_to_global : int array;
  global_offset : int array;
  faces : face array;
  interior_sites : int array;
      (** sites whose stencil never touches a ghost slot *)
  boundary_sites : int array;
}

type t

val create : Geometry.t -> int array -> t
(** [create global grid] decomposes; each grid extent must divide the
    corresponding lattice extent. Grid extent 1 self-exchanges. *)

val global : t -> Geometry.t
val grid : t -> int array
val n_ranks : t -> int
val rank_geometry : t -> int -> rank_geometry
val owner : t -> int -> int
(** Owning rank of a global site. *)

val local_index : t -> int -> int
(** Local index of a global site on its owner. *)

val fwd : rank_geometry -> int -> int -> int
(** [fwd rg s mu] — extended index (local or ghost) of the forward hop. *)

val bwd : rank_geometry -> int -> int -> int

val halo_sites : rank_geometry -> int
(** Sites moved per full halo exchange on this rank. *)

val scatter_field : t -> dof:int -> Linalg.Field.t -> int -> Linalg.Field.t
(** Restrict a global field ([dof] floats per site) to a rank. *)

val gather_field : t -> dof:int -> Linalg.Field.t array -> Linalg.Field.t
(** Reassemble rank-local arrays into a global field. *)

val gather_gauge : t -> Gauge.t -> int -> Linalg.Field.t
(** Extended-volume (local + ghost) gauge copy for one rank, flat
    [ext_site × mu × 18] layout. *)
