(* Wilson (gradient) flow: the continuous smoothing used to prepare the
   production gauge fields ("gradient-flowed HISQ" in the CalLat
   program). Integrates dV/dt = Z(V) V with the Luscher RK3 scheme,
   where Z(V) is the su(3)-projected force of the Wilson action —
   structurally the stout Q with rho -> epsilon step size.

     W0 = V
     W1 = exp( (1/4) Z0 ) W0
     W2 = exp( (8/9) Z1 - (17/36) Z0 ) W1
     V' = exp( (3/4) Z2 - (8/9) Z1 + (17/36) Z0 ) W2

   with Zk = eps * Z(Wk). The scale-setting observable t^2 <E(t)> uses
   the clover energy density. *)

module Su3 = Linalg.Su3

(* i*Q (antihermitian) field for the current links; reuse the stout
   projection with rho = 1 (the step size enters via the RK weights). *)
let force field ~site ~mu =
  let u = Gauge.get field site mu in
  let staple = Gauge.staple field site mu in
  (* hermitian Q; the integrator exponentiates i*(combination) *)
  Smear.stout_q ~rho:1.0 u (Su3.adj staple)

type z_field = Su3.t array array  (* [site].[mu] *)

let compute_z field ~eps : z_field =
  let geom = Gauge.geom field in
  Array.init (Geometry.volume geom) (fun site ->
      Array.init Geometry.n_dim (fun mu ->
          Su3.scale eps (force field ~site ~mu)))

let apply_exp field (z : z_field) =
  let geom = Gauge.geom field in
  let out = Gauge.copy field in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to Geometry.n_dim - 1 do
        Gauge.set out site mu
          (Su3.mul (Smear.exp_i_herm z.(site).(mu)) (Gauge.get field site mu))
      done);
  out

let z_combine a za b zb =
  Array.mapi
    (fun site row ->
      Array.mapi (fun mu qa -> Su3.add (Su3.scale a qa) (Su3.scale b zb.(site).(mu))) row)
    za

let z_combine3 a za b zb c zc =
  Array.mapi
    (fun site row ->
      Array.mapi
        (fun mu qa ->
          Su3.add (Su3.scale a qa)
            (Su3.add (Su3.scale b zb.(site).(mu)) (Su3.scale c zc.(site).(mu))))
        row)
    za

(* One RK3 step of size [eps]. *)
let step ?(eps = 0.02) field =
  let z0 = compute_z field ~eps in
  let w1 = apply_exp field (z_combine 0.25 z0 0. z0) in
  let z1 = compute_z w1 ~eps in
  let w2 = apply_exp w1 (z_combine (8. /. 9.) z1 (-17. /. 36.) z0) in
  let z2 = compute_z w2 ~eps in
  apply_exp w2 (z_combine3 (3. /. 4.) z2 (-8. /. 9.) z1 (17. /. 36.) z0)

type history = { t : float; plaquette : float; t2e : float }

(* Flow to time [t_max], recording t^2 <E> along the trajectory (the
   w0/t0 scale-setting observable). *)
let flow ?(eps = 0.02) ~t_max field =
  let steps = int_of_float (Float.round (t_max /. eps)) in
  let hist = ref [] in
  let v = ref field in
  for k = 1 to steps do
    v := step ~eps !v;
    let t = float_of_int k *. eps in
    hist :=
      {
        t;
        plaquette = Gauge.average_plaquette !v;
        t2e = t *. t *. Observables.average_energy_density !v;
      }
      :: !hist
  done;
  (!v, List.rev !hist)
