(** Stout link smearing (Morningstar–Peardon): U' = exp(iQ)·U with Q
    the su(3)-projected staple force — the smoothing applied to the
    production gauge fields. *)

val exp_i_herm : ?terms:int -> Linalg.Su3.t -> Linalg.Su3.t
(** exp(iQ) for hermitian traceless Q (power series, snapped back to
    SU(3)). *)

val stout_q : rho:float -> Linalg.Su3.t -> Linalg.Su3.t -> Linalg.Su3.t
(** [stout_q ~rho u c] with [c] the staple sum in the C = ρA†
    convention: the hermitian traceless Q of one link. *)

val step : ?rho:float -> Gauge.t -> Gauge.t
(** One stout step (fresh field; all staples read the input). *)

val smear : ?rho:float -> steps:int -> Gauge.t -> Gauge.t
