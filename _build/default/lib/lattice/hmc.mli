(** Hybrid Monte Carlo for the pure SU(3) Wilson gauge action — the
    algorithm family behind the paper's ensembles, in quenched form.
    Exact for any step size via the Metropolis correction; serves as an
    independent cross-check of the heatbath. *)

val random_momentum : Util.Rng.t -> Linalg.Su3.t
(** Hermitian traceless, distributed as exp(−Tr P²/2). *)

type momenta = Linalg.Su3.t array array

val fresh_momenta : Util.Rng.t -> Geometry.t -> momenta
val kinetic_energy : momenta -> float
val hamiltonian : beta:float -> Gauge.t -> momenta -> float

val force : beta:float -> Gauge.t -> int -> int -> Linalg.Su3.t
(** −dS/dU direction for one link (hermitian traceless). *)

val leapfrog :
  beta:float -> eps:float -> steps:int -> Gauge.t -> momenta -> Gauge.t * momenta

type trajectory_result = {
  field : Gauge.t;
  accepted : bool;
  dh : float;
  plaquette : float;
}

val trajectory :
  ?eps:float -> ?steps:int -> beta:float -> Util.Rng.t -> Gauge.t -> trajectory_result

val run :
  ?eps:float ->
  ?steps:int ->
  beta:float ->
  n:int ->
  Util.Rng.t ->
  Gauge.t ->
  Gauge.t * float array * float
(** [(final field, plaquette history, acceptance rate)]. *)

val reversibility :
  ?eps:float -> ?steps:int -> beta:float -> Util.Rng.t -> Gauge.t -> float
(** Max link deviation after forward + momentum-flip + backward
    integration; machine-roundoff for a correct integrator. *)

val dh_at : ?tau:float -> beta:float -> eps:float -> Util.Rng.t -> Gauge.t -> float
(** ΔH of one trajectory of length [tau] at step [eps]; the leapfrog is
    second order, so ΔH ∝ eps² at fixed tau. *)
