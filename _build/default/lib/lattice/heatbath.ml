(* Quenched SU(3) Monte Carlo for the Wilson gauge action:
   Cabibbo-Marinari pseudo-heatbath over the three SU(2) subgroups with
   Kennedy-Pendleton sampling, plus microcanonical overrelaxation.
   This generates the gluonic field configurations the workflow of
   Fig 2 starts from. *)

let subgroups = [| (0, 1); (0, 2); (1, 2) |]

(* Kennedy-Pendleton: sample a0 in [-1,1] with density
   sqrt(1-a0^2) exp(alpha a0). Returns a0. *)
let kennedy_pendleton rng ~alpha =
  if alpha < 1e-8 then
    (* Free limit: density sqrt(1-a0^2); sample by rejection. *)
    let rec loop () =
      let x = Util.Rng.uniform rng ~lo:(-1.) ~hi:1. in
      if Util.Rng.float rng <= sqrt (1. -. (x *. x)) then x else loop ()
    in
    loop ()
  else begin
    let rec loop n =
      if n > 10_000 then 1. -. (2. *. Util.Rng.float rng /. alpha)
      else begin
        let r1 = 1. -. Util.Rng.float rng in
        let r2 = 1. -. Util.Rng.float rng in
        let r3 = 1. -. Util.Rng.float rng in
        let x1 = -.log r1 /. alpha in
        let x2 = -.log r2 /. alpha in
        let c = cos (2. *. Float.pi *. r3) in
        let delta = x1 +. (x2 *. c *. c) in
        let r4 = Util.Rng.float rng in
        if r4 *. r4 <= 1. -. (delta /. 2.) then 1. -. delta else loop (n + 1)
      end
    in
    let a0 = loop 0 in
    if a0 < -1. then -1. else if a0 > 1. then 1. else a0
  end

(* Uniform point on the 2-sphere of radius r. *)
let random_sphere rng r =
  let cos_theta = Util.Rng.uniform rng ~lo:(-1.) ~hi:1. in
  let sin_theta = sqrt (1. -. (cos_theta *. cos_theta)) in
  let phi = Util.Rng.uniform rng ~lo:0. ~hi:(2. *. Float.pi) in
  (r *. sin_theta *. cos phi, r *. sin_theta *. sin phi, r *. cos_theta)

(* Quaternion helpers: (a0, a1, a2, a3) <-> su2 2x2. *)
let quat_mul (a0, a1, a2, a3) (b0, b1, b2, b3) =
  ( (a0 *. b0) -. (a1 *. b1) -. (a2 *. b2) -. (a3 *. b3),
    (a0 *. b1) +. (a1 *. b0) +. (a2 *. b3) -. (a3 *. b2),
    (a0 *. b2) -. (a1 *. b3) +. (a2 *. b0) +. (a3 *. b1),
    (a0 *. b3) +. (a1 *. b2) -. (a2 *. b1) +. (a3 *. b0) )

let quat_conj (a0, a1, a2, a3) = (a0, -.a1, -.a2, -.a3)

let quat_norm (a0, a1, a2, a3) =
  sqrt ((a0 *. a0) +. (a1 *. a1) +. (a2 *. a2) +. (a3 *. a3))

(* One subgroup update of one link by heatbath. [w] is U * staple
   projected onto the (p,q) subgroup as an unnormalized quaternion. *)
let heatbath_subgroup rng ~beta u staple_m (p, q) =
  let v = Linalg.Su3.mul u staple_m in
  let w = Linalg.Su3.extract_su2 ~p ~q v in
  let k = quat_norm w in
  if k < 1e-14 then begin
    (* Degenerate staple: any SU(2) element is equally likely. *)
    let a0 = Util.Rng.uniform rng ~lo:(-1.) ~hi:1. in
    let a1, a2, a3 = random_sphere rng (sqrt (1. -. (a0 *. a0))) in
    Linalg.Su3.mul (Linalg.Su3.embed_su2 ~p ~q (a0, a1, a2, a3)) u
  end
  else begin
    let (w0, w1, w2, w3) = w in
    let wbar = (w0 /. k, w1 /. k, w2 /. k, w3 /. k) in
    (* Want alpha with P(alpha) ~ exp((beta/3) k Re tr_2(alpha wbar)).
       Substitute X = alpha*wbar: sample X with P ~ exp(2 (beta/3) k x0),
       then alpha = X wbar^dag. *)
    let alpha_kp = 2. *. beta *. k /. 3. in
    let x0 = kennedy_pendleton rng ~alpha:alpha_kp in
    let x1, x2, x3 = random_sphere rng (sqrt (Float.max 0. (1. -. (x0 *. x0)))) in
    let alpha = quat_mul (x0, x1, x2, x3) (quat_conj wbar) in
    Linalg.Su3.mul (Linalg.Su3.embed_su2 ~p ~q alpha) u
  end

(* Microcanonical overrelaxation in one subgroup: alpha = (wbar^dag)^2
   leaves Re tr(alpha V) invariant while moving the link maximally. *)
let overrelax_subgroup u staple_m (p, q) =
  let v = Linalg.Su3.mul u staple_m in
  let w = Linalg.Su3.extract_su2 ~p ~q v in
  let k = quat_norm w in
  if k < 1e-14 then u
  else begin
    let (w0, w1, w2, w3) = w in
    let wbar_dag = quat_conj (w0 /. k, w1 /. k, w2 /. k, w3 /. k) in
    let alpha = quat_mul wbar_dag wbar_dag in
    Linalg.Su3.mul (Linalg.Su3.embed_su2 ~p ~q alpha) u
  end

let update_link rng ~beta field site mu =
  let staple_m = Gauge.staple field site mu in
  let u = ref (Gauge.get field site mu) in
  Array.iter (fun pq -> u := heatbath_subgroup rng ~beta !u staple_m pq) subgroups;
  Gauge.set field site mu (Linalg.Su3.reunitarize !u)

let overrelax_link field site mu =
  let staple_m = Gauge.staple field site mu in
  let u = ref (Gauge.get field site mu) in
  Array.iter (fun pq -> u := overrelax_subgroup !u staple_m pq) subgroups;
  Gauge.set field site mu (Linalg.Su3.reunitarize !u)

(* Sweep in checkerboard order: all even sites of each direction first,
   then odd — the staple of a link never involves another link of the
   same (parity, direction) class, so the sweep is well-defined. *)
let sweep rng ~beta field =
  let g = Gauge.geom field in
  for mu = 0 to Geometry.n_dim - 1 do
    for p = 0 to 1 do
      Geometry.iter_parity g p (fun site -> update_link rng ~beta field site mu)
    done
  done

let overrelax_sweep field =
  let g = Gauge.geom field in
  for mu = 0 to Geometry.n_dim - 1 do
    for p = 0 to 1 do
      Geometry.iter_parity g p (fun site -> overrelax_link field site mu)
    done
  done

type schedule = {
  beta : float;
  n_thermalize : int;  (* discarded sweeps *)
  n_decorrelate : int;  (* sweeps between saved configurations *)
  n_overrelax : int;  (* OR sweeps per heatbath sweep *)
}

let default_schedule ~beta =
  { beta; n_thermalize = 50; n_decorrelate = 10; n_overrelax = 3 }

(* Generate an ensemble of gauge configurations, reporting the
   plaquette history so tests can check thermalization. *)
let generate rng schedule geom ~n_configs =
  let field = Gauge.warm geom rng ~eps:0.3 in
  let plaquettes = ref [] in
  let combined_sweep () =
    sweep rng ~beta:schedule.beta field;
    for _ = 1 to schedule.n_overrelax do
      overrelax_sweep field
    done;
    plaquettes := Gauge.average_plaquette field :: !plaquettes
  in
  for _ = 1 to schedule.n_thermalize do
    combined_sweep ()
  done;
  let configs =
    Array.init n_configs (fun _ ->
        for _ = 1 to schedule.n_decorrelate do
          combined_sweep ()
        done;
        Gauge.copy field)
  in
  (configs, Array.of_list (List.rev !plaquettes))
