(** 4D periodic lattice geometry with even/odd checkerboarding.
    Directions mu = 0,1,2,3 are x,y,z,t; site indexing is lexicographic
    with x fastest. *)

type t

val n_dim : int

val create : int array -> t
(** [create [|lx; ly; lz; lt|]]; all extents ≥ 2, volume even. *)

val volume : t -> int
val dims : t -> int array
val half_volume : t -> int

val fwd : t -> int -> int -> int
(** [fwd t site mu] is the site one step forward in direction [mu]
    (periodic). *)

val fwd_table : t -> int array
(** Raw neighbor table, stride 4: entry [4·site + mu]. Shared with the
    stencil kernels; do not mutate. *)

val bwd_table : t -> int array

val bwd : t -> int -> int -> int
val parity : t -> int -> int
(** 0 = even, 1 = odd. *)

val coords : t -> int -> int array
val site : t -> int array -> int
(** Coordinates are wrapped into range. *)

val eo_index : t -> int -> int
(** Index of a site within its parity block (checkerboard index). *)

val site_of_eo : t -> parity:int -> index:int -> int
val time_extent : t -> int
val spatial_volume : t -> int

val crosses_boundary_fwd : t -> int -> int -> bool
(** Does the forward hop from [site] in [mu] wrap around the lattice? *)

val iter_sites : t -> (int -> unit) -> unit
val iter_parity : t -> int -> (int -> unit) -> unit
