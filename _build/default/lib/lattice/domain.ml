(* Domain decomposition of a 4D lattice over a process grid: the index
   machinery behind the virtual-rank halo exchange. Each rank owns a
   subgrid; neighbor tables point boundary hops into per-face ghost
   regions that the exchange fills. Works for grid extent 1 in a
   direction (self-exchange), so the same code path always runs. *)

type face = {
  mu : int;
  dir : int;  (* 0 = forward face, 1 = backward face *)
  send_sites : int array;  (* local sites whose data leaves through this face *)
  ghost_base : int;  (* first ext index of ghosts received through this face *)
  neighbor : int;  (* rank on the other side *)
}

type rank_geometry = {
  rank : int;
  coords : int array;  (* position in process grid *)
  local_dims : int array;
  local_volume : int;
  ext_volume : int;  (* local + ghost slots *)
  fwd : int array;  (* local_site*4 + mu -> ext index *)
  bwd : int array;
  local_to_global : int array;  (* ext index -> global site *)
  global_offset : int array;  (* origin of this subgrid in global coords *)
  faces : face array;  (* 8 faces, ordered (mu, dir) lex *)
  interior_sites : int array;  (* no hop reaches a ghost slot *)
  boundary_sites : int array;  (* some hop reaches a ghost slot *)
}

type t = {
  global : Geometry.t;
  grid : int array;
  n_ranks : int;
  ranks : rank_geometry array;
  rank_of_site : int array;  (* global site -> owning rank *)
  local_of_site : int array;  (* global site -> local index on owner *)
}

let n_dim = Geometry.n_dim

let rank_of_grid_coords grid c =
  let r = ref 0 in
  for mu = n_dim - 1 downto 0 do
    r := (!r * grid.(mu)) + (((c.(mu) mod grid.(mu)) + grid.(mu)) mod grid.(mu))
  done;
  !r

let grid_coords_of_rank grid rank =
  let c = Array.make n_dim 0 in
  let rem = ref rank in
  for mu = 0 to n_dim - 1 do
    c.(mu) <- !rem mod grid.(mu);
    rem := !rem / grid.(mu)
  done;
  c

(* Lexicographic index of a local coordinate vector within dims. *)
let local_site_of_coords dims c =
  let s = ref 0 in
  for mu = n_dim - 1 downto 0 do
    s := (!s * dims.(mu)) + c.(mu)
  done;
  !s

let local_coords_of_site dims s =
  let c = Array.make n_dim 0 in
  let rem = ref s in
  for mu = 0 to n_dim - 1 do
    c.(mu) <- !rem mod dims.(mu);
    rem := !rem / dims.(mu)
  done;
  c

(* Enumerate the face slice {x | x_mu = fixed} in lexicographic order of
   the transverse coordinates — both sides of an exchange agree on it. *)
let face_sites dims ~mu ~fixed =
  let t_dims = Array.init (n_dim - 1) (fun i -> dims.(if i < mu then i else i + 1)) in
  let n = Array.fold_left ( * ) 1 t_dims in
  Array.init n (fun idx ->
      let c = Array.make n_dim 0 in
      let rem = ref idx in
      for i = 0 to n_dim - 2 do
        let d = if i < mu then i else i + 1 in
        c.(d) <- !rem mod dims.(d);
        rem := !rem / dims.(d)
      done;
      c.(mu) <- fixed;
      local_site_of_coords dims c)

let create global grid =
  if Array.length grid <> n_dim then invalid_arg "Domain.create: grid must be 4d";
  let gdims = Geometry.dims global in
  Array.iteri
    (fun mu p ->
      if p < 1 then invalid_arg "Domain.create: grid extents must be >= 1";
      if gdims.(mu) mod p <> 0 then
        invalid_arg "Domain.create: grid must divide lattice dims")
    grid;
  let n_ranks = Array.fold_left ( * ) 1 grid in
  let local_dims = Array.init n_dim (fun mu -> gdims.(mu) / grid.(mu)) in
  let local_volume = Array.fold_left ( * ) 1 local_dims in
  let rank_of_site = Array.make (Geometry.volume global) 0 in
  let local_of_site = Array.make (Geometry.volume global) 0 in
  let make_rank rank =
    let coords = grid_coords_of_rank grid rank in
    let global_offset = Array.init n_dim (fun mu -> coords.(mu) * local_dims.(mu)) in
    (* Ghost layout: faces in (mu, dir) order after the local block. *)
    let face_size mu = local_volume / local_dims.(mu) in
    let ghost_bases = Array.make (2 * n_dim) 0 in
    let total = ref local_volume in
    for mu = 0 to n_dim - 1 do
      for dir = 0 to 1 do
        ghost_bases.((2 * mu) + dir) <- !total;
        total := !total + face_size mu
      done
    done;
    let ext_volume = !total in
    let local_to_global = Array.make ext_volume 0 in
    for s = 0 to local_volume - 1 do
      let c = local_coords_of_site local_dims s in
      let gc = Array.init n_dim (fun mu -> global_offset.(mu) + c.(mu)) in
      let gsite = Geometry.site global gc in
      local_to_global.(s) <- gsite;
      rank_of_site.(gsite) <- rank;
      local_of_site.(gsite) <- s
    done;
    (* Face position of a boundary site: index within the face slice. *)
    let face_pos mu s =
      let c = local_coords_of_site local_dims s in
      let idx = ref 0 in
      for i = n_dim - 2 downto 0 do
        let d = if i < mu then i else i + 1 in
        idx := (!idx * local_dims.(d)) + c.(d)
      done;
      !idx
    in
    let fwd = Array.make (local_volume * n_dim) 0 in
    let bwd = Array.make (local_volume * n_dim) 0 in
    for s = 0 to local_volume - 1 do
      let c = local_coords_of_site local_dims s in
      for mu = 0 to n_dim - 1 do
        (if c.(mu) = local_dims.(mu) - 1 then
           fwd.((s * n_dim) + mu) <- ghost_bases.(2 * mu) + face_pos mu s
         else begin
           let cf = Array.copy c in
           cf.(mu) <- cf.(mu) + 1;
           fwd.((s * n_dim) + mu) <- local_site_of_coords local_dims cf
         end);
        if c.(mu) = 0 then
          bwd.((s * n_dim) + mu) <- ghost_bases.((2 * mu) + 1) + face_pos mu s
        else begin
          let cb = Array.copy c in
          cb.(mu) <- cb.(mu) - 1;
          bwd.((s * n_dim) + mu) <- local_site_of_coords local_dims cb
        end
      done
    done;
    (* Global sites of ghost slots, for gauge gathering and testing. *)
    for mu = 0 to n_dim - 1 do
      let fsites = face_sites local_dims ~mu ~fixed:(local_dims.(mu) - 1) in
      Array.iteri
        (fun i s ->
          let g = local_to_global.(s) in
          local_to_global.(ghost_bases.(2 * mu) + i) <- Geometry.fwd global g mu)
        fsites;
      let bsites = face_sites local_dims ~mu ~fixed:0 in
      Array.iteri
        (fun i s ->
          let g = local_to_global.(s) in
          local_to_global.(ghost_bases.((2 * mu) + 1) + i) <- Geometry.bwd global g mu)
        bsites
    done;
    let neighbor_rank mu step =
      let c = Array.copy coords in
      c.(mu) <- c.(mu) + step;
      rank_of_grid_coords grid c
    in
    let faces =
      Array.init (2 * n_dim) (fun f ->
          let mu = f / 2 and dir = f mod 2 in
          let send_sites =
            (* Forward face sends the last slice (to the fwd neighbor),
               backward face sends slice 0 (to the bwd neighbor). *)
            if dir = 0 then face_sites local_dims ~mu ~fixed:(local_dims.(mu) - 1)
            else face_sites local_dims ~mu ~fixed:0
          in
          {
            mu;
            dir;
            send_sites;
            ghost_base = ghost_bases.(f);
            neighbor = (if dir = 0 then neighbor_rank mu 1 else neighbor_rank mu (-1));
          })
    in
    let is_boundary s =
      let c = local_coords_of_site local_dims s in
      let b = ref false in
      for mu = 0 to n_dim - 1 do
        if c.(mu) = 0 || c.(mu) = local_dims.(mu) - 1 then b := true
      done;
      !b
    in
    let interior = ref [] and boundary = ref [] in
    for s = local_volume - 1 downto 0 do
      if is_boundary s then boundary := s :: !boundary
      else interior := s :: !interior
    done;
    {
      rank;
      coords;
      local_dims;
      local_volume;
      ext_volume;
      fwd;
      bwd;
      local_to_global;
      global_offset;
      faces;
      interior_sites = Array.of_list !interior;
      boundary_sites = Array.of_list !boundary;
    }
  in
  let ranks = Array.init n_ranks make_rank in
  { global; grid; n_ranks; ranks; rank_of_site; local_of_site }

let global t = t.global
let grid t = t.grid
let n_ranks t = t.n_ranks
let rank_geometry t r = t.ranks.(r)
let owner t gsite = t.rank_of_site.(gsite)
let local_index t gsite = t.local_of_site.(gsite)

let fwd rg s mu = Array.unsafe_get rg.fwd ((s * n_dim) + mu)
let bwd rg s mu = Array.unsafe_get rg.bwd ((s * n_dim) + mu)

(* Count of halo sites one exchange moves, per rank (all 8 faces). *)
let halo_sites rg =
  Array.fold_left (fun acc f -> acc + Array.length f.send_sites) 0 rg.faces

(* Scatter a global field (dof floats per site) into a rank-local array
   covering local sites only. *)
let scatter_field t ~dof (global_field : Linalg.Field.t) r : Linalg.Field.t =
  let rg = t.ranks.(r) in
  let local = Linalg.Field.create (rg.local_volume * dof) in
  for s = 0 to rg.local_volume - 1 do
    let g = rg.local_to_global.(s) in
    for d = 0 to dof - 1 do
      Bigarray.Array1.unsafe_set local ((s * dof) + d)
        (Bigarray.Array1.unsafe_get global_field ((g * dof) + d))
    done
  done;
  local

(* Gather rank-local arrays (local sites only, ghosts ignored) back
   into a global field. *)
let gather_field t ~dof (locals : Linalg.Field.t array) : Linalg.Field.t =
  let out = Linalg.Field.create (Geometry.volume t.global * dof) in
  Array.iteri
    (fun r local ->
      let rg = t.ranks.(r) in
      for s = 0 to rg.local_volume - 1 do
        let g = rg.local_to_global.(s) in
        for d = 0 to dof - 1 do
          Bigarray.Array1.unsafe_set out ((g * dof) + d)
            (Bigarray.Array1.unsafe_get local ((s * dof) + d))
        done
      done)
    locals;
  out

(* Rank-local gauge copy over the extended (local + ghost) volume; the
   gauge field is read-only during a solve, so ghosts are filled once
   here rather than exchanged each iteration. *)
let gather_gauge t (gauge : Gauge.t) r : Linalg.Field.t =
  let rg = t.ranks.(r) in
  let data = Linalg.Field.create (rg.ext_volume * n_dim * Gauge.link_floats) in
  for s = 0 to rg.ext_volume - 1 do
    let g = rg.local_to_global.(s) in
    for mu = 0 to n_dim - 1 do
      let link = Gauge.get gauge g mu in
      let b = ((s * n_dim) + mu) * Gauge.link_floats in
      for k = 0 to Gauge.link_floats - 1 do
        Bigarray.Array1.unsafe_set data (b + k) link.(k)
      done
    done
  done;
  data
