(** Gauge observables beyond the plaquette: Wilson loops, the Polyakov
    loop, clover field strength, energy density and topological
    charge. All gauge invariant. *)

val line : Gauge.t -> site:int -> mu:int -> len:int -> Linalg.Su3.t * int
(** Ordered link product along a straight path; returns (product,
    endpoint site). *)

val wilson_loop :
  Gauge.t -> site:int -> mu:int -> nu:int -> r:int -> t:int -> Linalg.Su3.t

val average_wilson_loop : Gauge.t -> r:int -> t:int -> float
(** Averaged over sites and spatial-temporal planes; 1 on the cold
    configuration. *)

val polyakov_loop : Gauge.t -> Linalg.Cplx.t
(** Spatially-averaged trace of the winding time-link product / 3. *)

val clover : Gauge.t -> site:int -> mu:int -> nu:int -> Linalg.Su3.t
(** Clover-averaged field strength F_munu(x) (hermitian traceless). *)

val energy_density : Gauge.t -> site:int -> float
val average_energy_density : Gauge.t -> float

val topological_charge : Gauge.t -> float
(** (1/32π²) ε tr[F F] summed over the lattice (clover discretization;
    not integer-quantized on rough configurations). *)
