(** Wilson (gradient) flow with the Lüscher RK3 integrator — the
    smoothing used to prepare production gauge fields, and the
    t²⟨E⟩ scale-setting observable. *)

val step : ?eps:float -> Gauge.t -> Gauge.t
(** One RK3 step of flow time [eps] (default 0.02). *)

type history = { t : float; plaquette : float; t2e : float }

val flow : ?eps:float -> t_max:float -> Gauge.t -> Gauge.t * history list
(** Integrate to [t_max], recording the trajectory. *)
