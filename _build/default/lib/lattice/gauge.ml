(* Gauge field U_mu(x): one SU(3) matrix per site and direction, stored
   flat as volume * 4 * 18 floats in a Bigarray so views interoperate
   with Linalg.Su3 (same 18-float layout). *)

open Bigarray

type t = {
  geom : Geometry.t;
  data : (float, float64_elt, c_layout) Array1.t;
}

let link_floats = 18

let base _t site mu = ((site * Geometry.n_dim) + mu) * link_floats

let create geom =
  let n = Geometry.volume geom * Geometry.n_dim * link_floats in
  let data = Array1.create float64 c_layout n in
  Array1.fill data 0.;
  { geom; data }

let geom t = t.geom
let data t = t.data

let get t site mu =
  let b = base t site mu in
  Array.init link_floats (fun i -> Array1.unsafe_get t.data (b + i))

let set t site mu (m : Linalg.Su3.t) =
  let b = base t site mu in
  for i = 0 to link_floats - 1 do
    Array1.unsafe_set t.data (b + i) m.(i)
  done

let copy t =
  let fresh = create t.geom in
  Array1.blit t.data fresh.data;
  fresh

let unit geom =
  let t = create geom in
  let one = Linalg.Su3.id () in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to Geometry.n_dim - 1 do
        set t site mu one
      done);
  t

let random geom rng =
  let t = create geom in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to Geometry.n_dim - 1 do
        set t site mu (Linalg.Su3.random rng)
      done);
  t

let warm geom rng ~eps =
  let t = create geom in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to Geometry.n_dim - 1 do
        set t site mu (Linalg.Su3.random_near_identity rng ~eps)
      done);
  t

let reunitarize t =
  Geometry.iter_sites t.geom (fun site ->
      for mu = 0 to Geometry.n_dim - 1 do
        set t site mu (Linalg.Su3.reunitarize (get t site mu))
      done)

(* Plaquette U_mu(x) U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag. *)
let plaquette t site mu nu =
  let g = t.geom in
  let u1 = get t site mu in
  let u2 = get t (Geometry.fwd g site mu) nu in
  let u3 = Linalg.Su3.adj (get t (Geometry.fwd g site nu) mu) in
  let u4 = Linalg.Su3.adj (get t site nu) in
  Linalg.Su3.(mul (mul u1 u2) (mul u3 u4))

(* Average plaquette normalized so that the cold (unit) configuration
   gives 1: <(1/3) Re Tr P>. *)
let average_plaquette t =
  let acc = ref 0. in
  let count = ref 0 in
  Geometry.iter_sites t.geom (fun site ->
      for mu = 0 to Geometry.n_dim - 2 do
        for nu = mu + 1 to Geometry.n_dim - 1 do
          acc := !acc +. Linalg.Su3.re_trace (plaquette t site mu nu);
          incr count
        done
      done);
  !acc /. (3. *. float_of_int !count)

(* Wilson action S = beta * sum_p (1 - (1/3) Re Tr U_p). *)
let wilson_action t ~beta =
  let n_plaq = Geometry.volume t.geom * 6 in
  beta *. float_of_int n_plaq *. (1. -. average_plaquette t)

(* Staple sum A such that the link-local Wilson action is
   -(beta/3) Re Tr (U_mu(x) A). Six staples: for each nu <> mu, the
   forward staple U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag and the
   backward staple U_nu(x+mu-nu)^dag U_mu(x-nu)^dag U_nu(x-nu). *)
let staple t site mu =
  let module M = Linalg.Su3 in
  let g = t.geom in
  let acc = ref (M.zero ()) in
  for nu = 0 to Geometry.n_dim - 1 do
    if nu <> mu then begin
      let xpmu = Geometry.fwd g site mu in
      let xpnu = Geometry.fwd g site nu in
      let fwd_staple =
        M.mul (get t xpmu nu)
          (M.mul (M.adj (get t xpnu mu)) (M.adj (get t site nu)))
      in
      let xmnu = Geometry.bwd g site nu in
      let xpmu_mnu = Geometry.bwd g xpmu nu in
      let bwd_staple =
        M.mul (M.adj (get t xpmu_mnu nu))
          (M.mul (M.adj (get t xmnu mu)) (get t xmnu nu))
      in
      acc := M.add !acc (M.add fwd_staple bwd_staple)
    end
  done;
  !acc

(* Fermion antiperiodic boundary condition in time, implemented as a
   -1 phase on time links leaving the last time slice. Returns a fresh
   field; the Monte Carlo keeps the periodic original. *)
let with_antiperiodic_time t =
  let fresh = copy t in
  let g = t.geom in
  Geometry.iter_sites g (fun site ->
      if Geometry.crosses_boundary_fwd g site 3 then
        set fresh site 3 (Linalg.Su3.scale (-1.) (get fresh site 3)));
  fresh

let max_unitarity_violation t =
  let module M = Linalg.Su3 in
  let worst = ref 0. in
  Geometry.iter_sites t.geom (fun site ->
      for mu = 0 to Geometry.n_dim - 1 do
        let u = get t site mu in
        let d = M.frobenius_dist (M.mul u (M.adj u)) (M.id ()) in
        if d > !worst then worst := d
      done);
  !worst
