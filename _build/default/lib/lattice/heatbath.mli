(** Quenched SU(3) Monte Carlo: Cabibbo–Marinari heatbath
    (Kennedy–Pendleton) and microcanonical overrelaxation for the
    Wilson gauge action. *)

val kennedy_pendleton : Util.Rng.t -> alpha:float -> float
(** Sample a0 ∈ [−1,1] with density ∝ sqrt(1−a0²)·exp(α·a0). *)

val update_link : Util.Rng.t -> beta:float -> Gauge.t -> int -> int -> unit
(** Heatbath update of link (site, mu) over all three SU(2) subgroups. *)

val overrelax_link : Gauge.t -> int -> int -> unit
(** Action-preserving overrelaxation update of one link. *)

val sweep : Util.Rng.t -> beta:float -> Gauge.t -> unit
(** One heatbath sweep over all links, checkerboard ordered. *)

val overrelax_sweep : Gauge.t -> unit

type schedule = {
  beta : float;
  n_thermalize : int;
  n_decorrelate : int;
  n_overrelax : int;
}

val default_schedule : beta:float -> schedule

val generate :
  Util.Rng.t -> schedule -> Geometry.t -> n_configs:int -> Gauge.t array * float array
(** [(configurations, plaquette history)]. *)
