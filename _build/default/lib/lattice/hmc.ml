(* Hybrid Monte Carlo for the pure SU(3) Wilson gauge action: the
   algorithm family that generated the paper's (dynamical) ensembles,
   here in its quenched form as an independent cross-check of the
   heatbath — two different exact algorithms must produce the same
   plaquette distribution, which the test suite verifies.

   Molecular dynamics in fictitious time with hermitian traceless
   momenta P(x, mu):

     H(P, U)  = (1/2) sum Tr[P^2] + S_W(U)
     dU/dtau  = i P U
     dP/dtau  = -F(U),  F = (beta/6) i [ W - W^dag - (1/3) tr(W - W^dag) ]
                with W = U * A (A = staple sum)

   integrated by leapfrog and corrected by a Metropolis accept/reject
   on dH, making the algorithm exact for any step size. *)

module Su3 = Linalg.Su3
module Cplx = Linalg.Cplx

(* Random hermitian traceless momentum distributed as
   exp(-Tr P^2 / 2): with P = sum_a x_a T_a and Tr[T_a T_b] =
   delta_ab/2 the weight is exp(-sum x_a^2 / 4), so the coefficients
   are Gaussian with sigma = sqrt(2). *)
let random_momentum rng : Su3.t =
  let p = Su3.zero () in
  let x = Array.init 8 (fun _ -> sqrt 2. *. Util.Rng.gaussian rng) in
  let set r c (v : Cplx.t) =
    p.(Su3.idx r c) <- p.(Su3.idx r c) +. v.Cplx.re;
    p.(Su3.idx r c + 1) <- p.(Su3.idx r c + 1) +. v.Cplx.im
  in
  let s = 0.5 in
  (* Gell-Mann basis, lambda_a / 2 normalization *)
  set 0 1 (Cplx.make (s *. x.(0)) (-.s *. x.(1)));
  set 1 0 (Cplx.make (s *. x.(0)) (s *. x.(1)));
  set 0 2 (Cplx.make (s *. x.(3)) (-.s *. x.(4)));
  set 2 0 (Cplx.make (s *. x.(3)) (s *. x.(4)));
  set 1 2 (Cplx.make (s *. x.(5)) (-.s *. x.(6)));
  set 2 1 (Cplx.make (s *. x.(5)) (s *. x.(6)));
  set 0 0 (Cplx.make (s *. x.(2)) 0.);
  set 1 1 (Cplx.make (-.s *. x.(2)) 0.);
  let d = s *. x.(7) /. sqrt 3. in
  set 0 0 (Cplx.make d 0.);
  set 1 1 (Cplx.make d 0.);
  set 2 2 (Cplx.make (-2. *. d) 0.);
  p

(* Tr[P^2] for hermitian P. *)
let momentum_action (p : Su3.t) = Su3.re_trace (Su3.mul p p)

(* The MD force for one link: hermitian traceless projection of
   i (W - W^dag) scaled by beta/6, with W = U A. *)
let force ~beta field site mu : Su3.t =
  let u = Gauge.get field site mu in
  let a = Gauge.staple field site mu in
  let w = Su3.mul u a in
  let diff = Su3.sub w (Su3.adj w) in
  let tr = Su3.trace diff in
  let third = Cplx.scale (1. /. 3.) tr in
  let t = Su3.copy diff in
  for d = 0 to 2 do
    t.(Su3.idx d d) <- t.(Su3.idx d d) -. third.Cplx.re;
    t.(Su3.idx d d + 1) <- t.(Su3.idx d d + 1) -. third.Cplx.im
  done;
  (* -i * t is hermitian when t is antihermitian; the sign makes
     Tr(P F) = +dS/dtau so that H is conserved along the flow
     (Tr[P i(W - W^dag)] = -2 Im Tr[P W]). *)
  Su3.cscale (Cplx.make 0. (-.beta /. 6.)) t

type momenta = Su3.t array array  (* [site].[mu] *)

let fresh_momenta rng geom : momenta =
  Array.init (Geometry.volume geom) (fun _ ->
      Array.init Geometry.n_dim (fun _ -> random_momentum rng))

let kinetic_energy (p : momenta) =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a q -> a +. (0.5 *. momentum_action q)) acc row)
    0. p

let hamiltonian ~beta field (p : momenta) =
  kinetic_energy p +. Gauge.wilson_action field ~beta

(* Leapfrog: P half step, (U full, P full)^(n-1), U full, P half. *)
let leapfrog ~beta ~eps ~steps field (p : momenta) =
  let geom = Gauge.geom field in
  let u = Gauge.copy field in
  let p = Array.map (Array.map Su3.copy) p in
  let update_p factor =
    Geometry.iter_sites geom (fun site ->
        for mu = 0 to Geometry.n_dim - 1 do
          let f = force ~beta u site mu in
          p.(site).(mu) <- Su3.sub p.(site).(mu) (Su3.scale (factor *. eps) f)
        done)
  in
  let update_u () =
    Geometry.iter_sites geom (fun site ->
        for mu = 0 to Geometry.n_dim - 1 do
          let rot = Smear.exp_i_herm (Su3.scale eps p.(site).(mu)) in
          Gauge.set u site mu (Su3.mul rot (Gauge.get u site mu))
        done)
  in
  update_p 0.5;
  for k = 1 to steps do
    update_u ();
    if k < steps then update_p 1.0
  done;
  update_p 0.5;
  (u, p)

type trajectory_result = {
  field : Gauge.t;  (* the (possibly unchanged) field after the step *)
  accepted : bool;
  dh : float;
  plaquette : float;
}

(* One HMC trajectory with Metropolis correction. *)
let trajectory ?(eps = 0.05) ?(steps = 10) ~beta rng field =
  let p0 = fresh_momenta rng (Gauge.geom field) in
  let h0 = hamiltonian ~beta field p0 in
  let u1, p1 = leapfrog ~beta ~eps ~steps field p0 in
  let h1 = hamiltonian ~beta u1 p1 in
  let dh = h1 -. h0 in
  let accept = dh <= 0. || Util.Rng.float rng < exp (-.dh) in
  let final = if accept then (Gauge.reunitarize u1; u1) else field in
  {
    field = final;
    accepted = accept;
    dh;
    plaquette = Gauge.average_plaquette final;
  }

(* Run [n] trajectories: final field, plaquette history, acceptance. *)
let run ?(eps = 0.05) ?(steps = 10) ~beta ~n rng field =
  let u = ref field in
  let history = Array.make n 0. in
  let accepted = ref 0 in
  for i = 0 to n - 1 do
    let r = trajectory ~eps ~steps ~beta rng !u in
    if r.accepted then incr accepted;
    u := r.field;
    history.(i) <- r.plaquette
  done;
  (!u, history, float_of_int !accepted /. float_of_int n)

(* Reversibility diagnostic: integrate forward, flip the momenta,
   integrate back; returns the maximum link deviation (should be at
   integrator-roundoff level, independent of eps). *)
let reversibility ?(eps = 0.05) ?(steps = 10) ~beta rng field =
  let p0 = fresh_momenta rng (Gauge.geom field) in
  let u1, p1 = leapfrog ~beta ~eps ~steps field p0 in
  let p1_flipped = Array.map (Array.map (fun q -> Su3.scale (-1.) q)) p1 in
  let u2, _ = leapfrog ~beta ~eps ~steps u1 p1_flipped in
  let geom = Gauge.geom field in
  let worst = ref 0. in
  Geometry.iter_sites geom (fun site ->
      for mu = 0 to Geometry.n_dim - 1 do
        let d = Su3.frobenius_dist (Gauge.get u2 site mu) (Gauge.get field site mu) in
        if d > !worst then worst := d
      done);
  !worst

(* |dH| for one trajectory at a given step size — the leapfrog is
   second order, so dH ~ eps^2 at fixed trajectory length. *)
let dh_at ?(tau = 0.5) ~beta ~eps rng field =
  let steps = max 1 (int_of_float (Float.round (tau /. eps))) in
  let p0 = fresh_momenta rng (Gauge.geom field) in
  let h0 = hamiltonian ~beta field p0 in
  let u1, p1 = leapfrog ~beta ~eps ~steps field p0 in
  hamiltonian ~beta u1 p1 -. h0
