(* 4D periodic lattice geometry: lexicographic site indexing, neighbor
   tables, and even/odd (red-black) checkerboarding. Directions are
   mu = 0..3 for x, y, z, t. *)

type t = {
  dims : int array;
  volume : int;
  half_volume : int;
  fwd : int array;  (* fwd.(4*site + mu) = site of x + mu-hat *)
  bwd : int array;
  parity : int array;  (* 0 = even, 1 = odd *)
  eo_of_site : int array;  (* site -> index within its parity block *)
  site_of_eo : int array;  (* parity * half_volume + eo_index -> site *)
}

let n_dim = 4

let coords_of_site dims site =
  let c = Array.make n_dim 0 in
  let rem = ref site in
  for mu = 0 to n_dim - 1 do
    c.(mu) <- !rem mod dims.(mu);
    rem := !rem / dims.(mu)
  done;
  c

let site_of_coords dims c =
  let s = ref 0 in
  for mu = n_dim - 1 downto 0 do
    s := (!s * dims.(mu)) + (((c.(mu) mod dims.(mu)) + dims.(mu)) mod dims.(mu))
  done;
  !s

let create dims =
  if Array.length dims <> n_dim then invalid_arg "Geometry.create: need 4 dims";
  Array.iter
    (fun d -> if d < 2 then invalid_arg "Geometry.create: dims must be >= 2")
    dims;
  let volume = Array.fold_left ( * ) 1 dims in
  if volume mod 2 <> 0 then
    invalid_arg "Geometry.create: volume must be even for checkerboarding";
  let half_volume = volume / 2 in
  let fwd = Array.make (volume * n_dim) 0 in
  let bwd = Array.make (volume * n_dim) 0 in
  let parity = Array.make volume 0 in
  let eo_of_site = Array.make volume 0 in
  let site_of_eo = Array.make volume 0 in
  let counts = [| 0; 0 |] in
  for site = 0 to volume - 1 do
    let c = coords_of_site dims site in
    let p = (c.(0) + c.(1) + c.(2) + c.(3)) land 1 in
    parity.(site) <- p;
    eo_of_site.(site) <- counts.(p);
    site_of_eo.((p * half_volume) + counts.(p)) <- site;
    counts.(p) <- counts.(p) + 1;
    for mu = 0 to n_dim - 1 do
      let cf = Array.copy c in
      cf.(mu) <- cf.(mu) + 1;
      fwd.((site * n_dim) + mu) <- site_of_coords dims cf;
      let cb = Array.copy c in
      cb.(mu) <- cb.(mu) - 1;
      bwd.((site * n_dim) + mu) <- site_of_coords dims cb
    done
  done;
  { dims; volume; half_volume; fwd; bwd; parity; eo_of_site; site_of_eo }

let volume t = t.volume
let dims t = t.dims
let fwd_table t = t.fwd
let bwd_table t = t.bwd
let half_volume t = t.half_volume
let fwd t site mu = Array.unsafe_get t.fwd ((site * n_dim) + mu)
let bwd t site mu = Array.unsafe_get t.bwd ((site * n_dim) + mu)
let parity t site = t.parity.(site)
let coords t site = coords_of_site t.dims site
let site t c = site_of_coords t.dims c
let eo_index t site = t.eo_of_site.(site)
let site_of_eo t ~parity ~index = t.site_of_eo.((parity * t.half_volume) + index)

let time_extent t = t.dims.(3)
let spatial_volume t = t.dims.(0) * t.dims.(1) * t.dims.(2)

(* True when moving forward from [site] in direction [mu] wraps the
   lattice — used for fermion boundary phases. *)
let crosses_boundary_fwd t site mu =
  (coords t site).(mu) = t.dims.(mu) - 1

let iter_sites t f =
  for site = 0 to t.volume - 1 do
    f site
  done

let iter_parity t p f =
  for i = 0 to t.half_volume - 1 do
    f (site_of_eo t ~parity:p ~index:i)
  done
