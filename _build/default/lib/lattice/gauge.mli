(** SU(3) gauge field storage, plaquette observables and staples. *)

type t

val link_floats : int

val create : Geometry.t -> t
(** Zero field (not a valid gauge configuration — use [unit]/[random]). *)

val geom : t -> Geometry.t

val data : t -> Linalg.Field.t
(** Raw flat storage, layout [(site·4 + mu)·18 + k]; shared, do not
    resize. *)

val get : t -> int -> int -> Linalg.Su3.t
(** [get t site mu] copies link U_mu(site). *)

val set : t -> int -> int -> Linalg.Su3.t -> unit
val copy : t -> t

val unit : Geometry.t -> t
(** Cold start: all links = identity. *)

val random : Geometry.t -> Util.Rng.t -> t
(** Hot start: Haar-spread random links. *)

val warm : Geometry.t -> Util.Rng.t -> eps:float -> t
(** Links near the identity with spread [eps]. *)

val reunitarize : t -> unit

val plaquette : t -> int -> int -> int -> Linalg.Su3.t
(** [plaquette t site mu nu] is the elementary plaquette matrix. *)

val average_plaquette : t -> float
(** Normalized so the cold configuration gives 1. *)

val wilson_action : t -> beta:float -> float

val staple : t -> int -> int -> Linalg.Su3.t
(** Six-staple sum A with link action −(β/3)·Re Tr(U·A). *)

val with_antiperiodic_time : t -> t
(** Copy with −1 phases on time links wrapping the lattice (fermion BC). *)

val max_unitarity_violation : t -> float
