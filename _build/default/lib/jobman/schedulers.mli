(** The three job-management strategies of the paper: naive bundling
    (20–25% idle), METAQ backfilling, and mpi_jm with blocks and
    co-scheduled contractions. *)

type outcome = {
  strategy : string;
  makespan : float;
  utilization : float;  (** productive node-time / (nodes × makespan) *)
  allocated_fraction : float;  (** allocation-held fraction *)
  ideal_time : float;  (** perfect-packing bound: total work / nodes *)
  idle_fraction : float;
  tasks_completed : int;
}

val naive : cluster:Cluster.t -> tasks:Task.t list -> outcome
(** Launch groups simultaneously; everyone waits for the slowest
    member before the next group starts. *)

val metaq :
  ?locality_penalty:bool -> cluster:Cluster.t -> tasks:Task.t list -> unit -> outcome
(** Backfill whenever nodes free; allocations may scatter and pay the
    locality penalty. *)

val mpi_jm :
  ?block_nodes:int -> cluster:Cluster.t -> tasks:Task.t list -> unit -> outcome
(** Jobs placed inside fixed blocks (no fragmentation); CPU-only
    contraction tasks are absorbed by co-scheduling. *)
