(** Startup-time model: monolithic mpirun (super-linear wireup, fails
    on any bad node) vs mpi_jm lumps (parallel launch, DPM connect,
    failed lumps dropped). Sec. V: 4224 Sierra nodes in 3–5 minutes. *)

type params = {
  base_s : float;
  per_node_s : float;
  super_linear_s : float;
  connect_s : float;
  schedule_s : float;
  node_failure_prob : float;
}

val default : params

val monolithic_attempt : params -> nodes:int -> float
(** One attempt's wall time. *)

val monolithic : params -> nodes:int -> float * float
(** (expected total including restarts, expected attempts). *)

type lump_result = {
  total_s : float;
  lumps : int;
  lumps_failed : int;
  nodes_lost : int;
  usable_nodes : int;
}

val mpi_jm : ?params:params -> nodes:int -> lump_nodes:int -> Util.Rng.t -> lump_result
