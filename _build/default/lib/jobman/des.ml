(* Minimal discrete-event simulation engine: a time-ordered event
   queue with deterministic tie-breaking (FIFO by insertion sequence),
   driving the job-management experiments. *)

module Key = struct
  type t = float * int  (* time, sequence *)

  let compare (t1, s1) (t2, s2) =
    match compare t1 t2 with 0 -> compare s1 s2 | c -> c
end

module Pq = Map.Make (Key)

type t = {
  mutable queue : (unit -> unit) Pq.t;
  mutable clock : float;
  mutable seq : int;
  mutable events_run : int;
}

let create () = { queue = Pq.empty; clock = 0.; seq = 0; events_run = 0 }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock -. 1e-9 then invalid_arg "Des.schedule_at: time in the past";
  t.queue <- Pq.add (Float.max time t.clock, t.seq) f t.queue;
  t.seq <- t.seq + 1

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Des.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let step t =
  match Pq.min_binding_opt t.queue with
  | None -> false
  | Some ((time, _seq) as key, f) ->
    t.queue <- Pq.remove key t.queue;
    t.clock <- time;
    t.events_run <- t.events_run + 1;
    f ();
    true

let run t =
  while step t do
    ()
  done

let events_run t = t.events_run
let pending t = Pq.cardinal t.queue
