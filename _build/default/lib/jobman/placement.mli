(** GPU-granular job placement (Sec. VII): overlay jobs on nodes at GPU
    granularity, e.g. three 16-GPU jobs on 8 six-GPU Summit nodes. *)

type job_placement = {
  job : int;
  nodes_used : int;
  gpus_per_node_used : int;
  efficiency : float;  (** 1.0 = dense placement *)
}

val placement_efficiency : gpus_per_node_used:int -> gpus_per_node:int -> float
(** Sparse placements pay for extra inter-node traffic per GPU. *)

val place :
  n_jobs:int ->
  gpus_per_job:int ->
  nodes:int ->
  gpus_per_node:int ->
  job_placement list option
(** Greedy densest-first placement; [None] if capacity is exceeded or
    no divisor-compatible layout exists. *)

val aggregate_efficiency : job_placement list -> float
