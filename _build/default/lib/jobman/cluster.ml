(* Cluster resource model: nodes with GPUs, CPU slots and a per-node
   speed factor (real allocations are heterogeneous — the origin of
   the naive-bundling idle waste). Accounts busy node-time so the
   schedulers can be compared on utilization. *)

type node = {
  id : int;
  gpus : int;
  cpus : int;
  speed : float;  (* relative execution speed, 1.0 nominal *)
  mutable free_gpus : int;
  mutable free_cpus : int;
}

type t = {
  nodes : node array;
  gpus_per_node : int;
  cpus_per_node : int;
  mutable busy_node_time : float;  (* integral of allocated nodes dt *)
  mutable busy_gpu_time : float;
  mutable last_account : float;
  mutable gpus_in_use : int;
  mutable nodes_in_use : int;
}

let create ~n_nodes ~gpus_per_node ~cpus_per_node ?(jitter = 0.) rng =
  let nodes =
    Array.init n_nodes (fun id ->
        let speed =
          if jitter > 0. then
            Float.max 0.5 (Util.Rng.gaussian_sigma rng ~mu:1.0 ~sigma:jitter)
          else 1.0
        in
        {
          id;
          gpus = gpus_per_node;
          cpus = cpus_per_node;
          speed;
          free_gpus = gpus_per_node;
          free_cpus = cpus_per_node;
        })
  in
  {
    nodes;
    gpus_per_node;
    cpus_per_node;
    busy_node_time = 0.;
    busy_gpu_time = 0.;
    last_account = 0.;
    gpus_in_use = 0;
    nodes_in_use = 0;
  }

let n_nodes t = Array.length t.nodes

(* Advance the utilization integrals to [time]. Call before any
   allocation state change. *)
let account t ~time =
  let dt = time -. t.last_account in
  if dt > 0. then begin
    t.busy_node_time <- t.busy_node_time +. (dt *. float_of_int t.nodes_in_use);
    t.busy_gpu_time <- t.busy_gpu_time +. (dt *. float_of_int t.gpus_in_use);
    t.last_account <- time
  end

(* Find [n] free nodes (all GPUs free). [contiguous] requires one run
   of consecutive node ids — the difference between mpi_jm blocks and
   METAQ's scattered first-fit. *)
let find_free_nodes ?(contiguous = false) t n =
  if contiguous then begin
    let result = ref None in
    let i = ref 0 in
    let total = n_nodes t in
    while !result = None && !i + n <= total do
      let ok = ref true in
      for j = !i to !i + n - 1 do
        if t.nodes.(j).free_gpus < t.nodes.(j).gpus then ok := false
      done;
      if !ok then result := Some (Array.init n (fun j -> !i + j)) else incr i
    done;
    !result
  end
  else begin
    let free = ref [] in
    let count = ref 0 in
    (try
       Array.iter
         (fun nd ->
           if nd.free_gpus = nd.gpus then begin
             free := nd.id :: !free;
             incr count;
             if !count = n then raise Exit
           end)
         t.nodes
     with Exit -> ());
    if !count = n then Some (Array.of_list (List.rev !free)) else None
  end

let allocate_nodes t ~time ids =
  account t ~time;
  Array.iter
    (fun id ->
      let nd = t.nodes.(id) in
      if nd.free_gpus < nd.gpus then invalid_arg "Cluster.allocate_nodes: busy node";
      nd.free_gpus <- 0;
      nd.free_cpus <- 0;
      t.nodes_in_use <- t.nodes_in_use + 1;
      t.gpus_in_use <- t.gpus_in_use + nd.gpus)
    ids

let release_nodes t ~time ids =
  account t ~time;
  Array.iter
    (fun id ->
      let nd = t.nodes.(id) in
      nd.free_gpus <- nd.gpus;
      nd.free_cpus <- nd.cpus;
      t.nodes_in_use <- t.nodes_in_use - 1;
      t.gpus_in_use <- t.gpus_in_use - nd.gpus)
    ids

(* Slowest node in an allocation bounds a tightly-coupled job. *)
let allocation_speed t ids =
  Array.fold_left (fun acc id -> Float.min acc t.nodes.(id).speed) infinity ids

(* Locality penalty of a scattered allocation: jobs spanning distant
   nodes lose communication performance. 1.0 = contiguous. *)
let locality_factor _t ids =
  if Array.length ids <= 1 then 1.0
  else begin
    let lo = Array.fold_left min max_int (Array.map Fun.id ids) in
    let hi = Array.fold_left max 0 ids in
    let span = hi - lo + 1 in
    let n = Array.length ids in
    (* fragmentation ratio >= 1; a 4-node job spread over 40 slots
       pays ~15% *)
    let frag = float_of_int span /. float_of_int n in
    Float.max 0.75 (1. -. (0.02 *. (frag -. 1.)))
  end

let utilization t ~makespan =
  if makespan <= 0. then 0.
  else t.busy_node_time /. (makespan *. float_of_int (n_nodes t))
