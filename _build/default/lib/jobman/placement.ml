(* GPU-granular job placement (Sec. VII): mpi_jm can cut nodes into
   pieces and overlay jobs, e.g. three 16-GPU jobs on 8 Summit nodes
   (48 GPUs): jobs A and B take GPUs {1,2,4,5} on nodes 1-4 and 5-8,
   job C takes GPUs {3,6} on all 8 nodes. Jobs that spread over more
   nodes with fewer GPUs per node pay a communication penalty, partly
   recovered by backfilling. *)

type job_placement = {
  job : int;
  nodes_used : int;
  gpus_per_node_used : int;
  efficiency : float;  (* relative to a dense placement *)
}

(* Penalty for using fewer GPUs per node than the node offers: more
   inter-node traffic per GPU. Dense placement = 1.0. *)
let placement_efficiency ~gpus_per_node_used ~gpus_per_node =
  if gpus_per_node_used >= gpus_per_node then 1.0
  else
    (* paper: 2-of-6 GPU placements "suffer a performance degradation"
       largely mitigated by backfilling; model ~6% per halving *)
    let ratio = float_of_int gpus_per_node /. float_of_int gpus_per_node_used in
    Float.max 0.75 (1. -. (0.06 *. (log ratio /. log 2.)))

(* Place [n_jobs] jobs of [gpus_per_job] on [nodes] nodes of
   [gpus_per_node], allowing split placements. Returns placements or
   None if capacity is insufficient. *)
let place ~n_jobs ~gpus_per_job ~nodes ~gpus_per_node =
  if n_jobs * gpus_per_job > nodes * gpus_per_node then None
  else begin
    let placements = ref [] in
    (* free GPU count per node *)
    let free = Array.make nodes gpus_per_node in
    for j = 0 to n_jobs - 1 do
      (* densest placement that fits entirely on the fewest nodes *)
      let best = ref None in
      for g = gpus_per_node downto 1 do
        if !best = None && gpus_per_job mod g = 0 then begin
          let need = gpus_per_job / g in
          let have = Array.fold_left (fun a f -> a + (if f >= g then 1 else 0)) 0 free in
          if have >= need then best := Some (g, need)
        end
      done;
      match !best with
      | None -> ()
      | Some (g, need) ->
        let placed = ref 0 in
        Array.iteri
          (fun i f ->
            if !placed < need && f >= g then begin
              free.(i) <- free.(i) - g;
              incr placed
            end)
          free;
        placements :=
          {
            job = j;
            nodes_used = need;
            gpus_per_node_used = g;
            efficiency = placement_efficiency ~gpus_per_node_used:g ~gpus_per_node;
          }
          :: !placements
    done;
    if List.length !placements = n_jobs then Some (List.rev !placements) else None
  end

let aggregate_efficiency placements =
  let total = List.fold_left (fun a p -> a +. p.efficiency) 0. placements in
  total /. float_of_int (List.length placements)
