(* Failure propagation through lumps. The paper (Sec. V): "we found
   that a call to MPI_Abort in a disconnected job still brings the
   entire lump down (in violation of the MPI standard), but fortunately
   not the entire system. This led us to use relatively small lump
   sizes on new systems that may be suffering from pre-acceptance
   issues."

   This experiment quantifies that choice: tasks abort with some
   probability; an abort kills the whole lump (its running tasks are
   requeued onto surviving lumps, its nodes are lost for the rest of
   the allocation). Large lumps lose more capacity per abort; tiny
   lumps waste scheduling flexibility. *)

type outcome = {
  lump_nodes : int;
  makespan : float;
  lumps_lost : int;
  nodes_lost : int;
  tasks_requeued : int;
  completed : int;
  capacity_left : float;  (* fraction of nodes alive at the end *)
}

type lump = {
  id : int;
  mutable alive : bool;
  mutable free_nodes : int;
  mutable running : (int * int) list;  (* (task id, nodes) *)
}

let run ?(abort_prob = 0.01) ~n_nodes ~lump_nodes ~job_nodes ~n_tasks ~duration
    rng =
  if lump_nodes < job_nodes then invalid_arg "Failures.run: lump smaller than job";
  let des = Des.create () in
  let n_lumps = n_nodes / lump_nodes in
  let lumps =
    Array.init n_lumps (fun id -> { id; alive = true; free_nodes = lump_nodes; running = [] })
  in
  let queue = Queue.create () in
  for i = 0 to n_tasks - 1 do
    Queue.add i queue
  done;
  let completed = ref 0 in
  let requeued = ref 0 in
  let lumps_lost = ref 0 in
  let rec try_start () =
    if not (Queue.is_empty queue) then begin
      match
        Array.find_opt (fun l -> l.alive && l.free_nodes >= job_nodes) lumps
      with
      | None -> ()
      | Some l ->
        let task = Queue.pop queue in
        l.free_nodes <- l.free_nodes - job_nodes;
        l.running <- (task, job_nodes) :: l.running;
        let dur = duration *. Util.Rng.uniform rng ~lo:0.85 ~hi:1.15 in
        Des.schedule des ~delay:dur (fun () ->
            if l.alive && List.mem_assoc task l.running then begin
              l.running <- List.remove_assoc task l.running;
              if Util.Rng.float rng < abort_prob then begin
                (* MPI_Abort: the whole lump goes down *)
                l.alive <- false;
                incr lumps_lost;
                (* this task is lost too: requeue it and the others *)
                Queue.add task queue;
                incr requeued;
                List.iter
                  (fun (t', _) ->
                    Queue.add t' queue;
                    incr requeued)
                  l.running;
                l.running <- []
              end
              else begin
                incr completed;
                l.free_nodes <- l.free_nodes + job_nodes
              end;
              try_start ()
            end);
        try_start ()
    end
  in
  try_start ();
  Des.run des;
  let alive_nodes =
    Array.fold_left (fun a l -> a + (if l.alive then lump_nodes else 0)) 0 lumps
  in
  {
    lump_nodes;
    makespan = Des.now des;
    lumps_lost = !lumps_lost;
    nodes_lost = n_nodes - alive_nodes;
    tasks_requeued = !requeued;
    completed = !completed;
    capacity_left = float_of_int alive_nodes /. float_of_int n_nodes;
  }

(* Sweep lump sizes under the same failure rate: the paper's rationale
   for small lumps. *)
let lump_size_sweep ?(abort_prob = 0.01) ~n_nodes ~job_nodes ~n_tasks ~duration
    ~lump_sizes rng =
  List.map
    (fun lump_nodes ->
      run ~abort_prob ~n_nodes ~lump_nodes ~job_nodes ~n_tasks ~duration
        (Util.Rng.split rng))
    lump_sizes
