lib/jobman/schedulers.mli: Cluster Task
