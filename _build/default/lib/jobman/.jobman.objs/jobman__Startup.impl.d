lib/jobman/startup.ml: Float Util
