lib/jobman/pipeline.ml: Des Hashtbl List Util
