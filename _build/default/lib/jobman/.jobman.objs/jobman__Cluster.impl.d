lib/jobman/cluster.ml: Array Float Fun List Util
