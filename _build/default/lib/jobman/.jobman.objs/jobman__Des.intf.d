lib/jobman/des.mli:
