lib/jobman/failures.mli: Util
