lib/jobman/pipeline.mli: Util
