lib/jobman/failures.ml: Array Des List Queue Util
