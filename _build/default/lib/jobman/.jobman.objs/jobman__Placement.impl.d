lib/jobman/placement.ml: Array Float List
