lib/jobman/schedulers.ml: Array Cluster Des List Queue Task
