lib/jobman/task.ml: List Util
