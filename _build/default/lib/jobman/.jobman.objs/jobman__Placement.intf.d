lib/jobman/placement.mli:
