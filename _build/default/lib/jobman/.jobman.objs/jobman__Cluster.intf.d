lib/jobman/cluster.mli: Util
