lib/jobman/des.ml: Float Map
