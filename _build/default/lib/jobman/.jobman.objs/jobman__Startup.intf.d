lib/jobman/startup.mli: Util
