lib/jobman/task.mli: Util
