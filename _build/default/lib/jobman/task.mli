(** Workload description: propagator solves (GPU, whole nodes, minutes,
    varying durations) and contraction batches (CPU-only). *)

type kind = Propagator | Contraction

type t = {
  id : int;
  kind : kind;
  nodes : int;
  base_duration : float;  (** seconds on a speed-1.0 allocation *)
}

val kind_name : kind -> string

val campaign :
  ?spread:float ->
  ?contraction_every:int ->
  n:int ->
  nodes:int ->
  duration:float ->
  Util.Rng.t ->
  t list
(** [n] propagator tasks of [nodes] nodes with lognormal-ish duration
    spread, one contraction (≈3% of a propagator × batch) per
    [contraction_every]. *)

val total_work : t list -> float
(** Σ duration × nodes. *)
