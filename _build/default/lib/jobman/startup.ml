(* Startup-time model for large allocations (Sec. V):

   - A monolithic mpirun over N nodes pays a super-linear cost (wireup
     state grows with the job) and fails entirely if any node is bad.
   - mpi_jm launches one manager per node in fixed-size lumps; lumps
     start in parallel, connect to the scheduler via MPI DPM, and bad
     lumps are simply ignored. "On Sierra, we were able to bring a
     4224 node job up and running in 3-5 minutes." *)

type params = {
  base_s : float;  (* fixed mpirun cost *)
  per_node_s : float;  (* linear wireup term *)
  super_linear_s : float;  (* coefficient of the N^2/1000 term *)
  connect_s : float;  (* DPM connect per lump (serialized at scheduler) *)
  schedule_s : float;  (* initial work distribution after connect *)
  node_failure_prob : float;  (* bad node / file-system problem *)
}

let default =
  {
    base_s = 20.;
    per_node_s = 0.04;
    super_linear_s = 0.012;
    connect_s = 1.5;
    schedule_s = 120.;
    node_failure_prob = 2e-4;
  }

(* Expected time for one monolithic launch attempt. *)
let monolithic_attempt p ~nodes =
  let n = float_of_int nodes in
  p.base_s +. (p.per_node_s *. n) +. (p.super_linear_s *. n *. n /. 1000.)

(* Monolithic launch: any bad node kills the attempt; retry until a
   clean draw (expected number of attempts = 1/success_prob). *)
let monolithic p ~nodes =
  let success = (1. -. p.node_failure_prob) ** float_of_int nodes in
  let attempts = 1. /. Float.max 1e-9 success in
  (monolithic_attempt p ~nodes *. attempts, attempts)

type lump_result = {
  total_s : float;
  lumps : int;
  lumps_failed : int;
  nodes_lost : int;
  usable_nodes : int;
}

(* mpi_jm: lumps of [lump_nodes] launch in parallel (their mpiruns are
   independent), failed lumps never connect and are dropped, the rest
   connect serially (cheap) and receive work. *)
let mpi_jm ?(params = default) ~nodes ~lump_nodes rng =
  let p = params in
  let lumps = (nodes + lump_nodes - 1) / lump_nodes in
  let lump_time = monolithic_attempt p ~nodes:lump_nodes in
  let failed = ref 0 in
  for _ = 1 to lumps do
    let lump_ok =
      let ok = ref true in
      for _ = 1 to lump_nodes do
        if Util.Rng.float rng < p.node_failure_prob then ok := false
      done;
      !ok
    in
    if not lump_ok then incr failed
  done;
  let good = lumps - !failed in
  let total =
    (* parallel lump launch + serialized connects + scheduling *)
    lump_time +. (p.connect_s *. float_of_int good) +. p.schedule_s
  in
  {
    total_s = total;
    lumps;
    lumps_failed = !failed;
    nodes_lost = !failed * lump_nodes;
    usable_nodes = nodes - (!failed * lump_nodes);
  }
