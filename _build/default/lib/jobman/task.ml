(* Workload description: the intermediate-sized tasks of a lattice
   campaign (Sec. V). Propagator solves want whole nodes' GPUs for
   minutes; contractions are CPU-only; durations vary task-to-task
   (different sources, different CG iteration counts), which is what
   naive bundling wastes time on. *)

type kind = Propagator | Contraction

type t = {
  id : int;
  kind : kind;
  nodes : int;  (* whole nodes required (GPU tasks) *)
  base_duration : float;  (* seconds on a speed-1.0 allocation *)
}

let kind_name = function Propagator -> "propagator" | Contraction -> "contraction"

(* A campaign: [n] propagator solves of [nodes] nodes each, with
   durations spread by [spread] (relative sigma, lognormal-ish), plus
   one CPU contraction task per [contraction_every] propagators.
   Contractions cost ~3% of a propagator (Sec. VI). *)
let campaign ?(spread = 0.2) ?(contraction_every = 4) ~n ~nodes ~duration rng =
  let tasks = ref [] in
  let id = ref 0 in
  for i = 0 to n - 1 do
    let d = duration *. exp (Util.Rng.gaussian_sigma rng ~mu:0. ~sigma:spread) in
    tasks := { id = !id; kind = Propagator; nodes; base_duration = d } :: !tasks;
    incr id;
    if (i + 1) mod contraction_every = 0 then begin
      tasks :=
        {
          id = !id;
          kind = Contraction;
          nodes = 1;
          base_duration = duration *. 0.03 *. float_of_int contraction_every;
        }
        :: !tasks;
      incr id
    end
  done;
  List.rev !tasks

let total_work tasks =
  List.fold_left (fun acc t -> acc +. (t.base_duration *. float_of_int t.nodes)) 0. tasks
