(** Cluster resource model: nodes with GPUs, CPU slots and a per-node
    speed factor (the heterogeneity behind naive bundling's idle
    waste). Tracks allocation integrals for utilization accounting. *)

type node = {
  id : int;
  gpus : int;
  cpus : int;
  speed : float;
  mutable free_gpus : int;
  mutable free_cpus : int;
}

type t

val create :
  n_nodes:int ->
  gpus_per_node:int ->
  cpus_per_node:int ->
  ?jitter:float ->
  Util.Rng.t ->
  t
(** [jitter] is the relative sigma of per-node speed (0 = homogeneous). *)

val n_nodes : t -> int

val account : t -> time:float -> unit
(** Advance the utilization integrals; called by allocate/release. *)

val find_free_nodes : ?contiguous:bool -> t -> int -> int array option
(** First [n] fully-free nodes; [contiguous] requires one consecutive
    run (mpi_jm blocks vs METAQ scatter). *)

val allocate_nodes : t -> time:float -> int array -> unit
(** @raise Invalid_argument if any node is busy. *)

val release_nodes : t -> time:float -> int array -> unit

val allocation_speed : t -> int array -> float
(** Slowest node gates a tightly-coupled job. *)

val locality_factor : t -> int array -> float
(** ≤ 1; penalty for scattered allocations (fragmentation). *)

val utilization : t -> makespan:float -> float
(** Allocation-based: node-time held / (nodes × makespan). *)
