(** Minimal discrete-event simulation engine: time-ordered event queue
    with deterministic FIFO tie-breaking. *)

type t

val create : unit -> t
val now : t -> float

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** @raise Invalid_argument if [time] is in the past. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** @raise Invalid_argument on negative delay. *)

val step : t -> bool
(** Run one event; false when the queue is empty. *)

val run : t -> unit
(** Run to exhaustion. *)

val events_run : t -> int
val pending : t -> int
