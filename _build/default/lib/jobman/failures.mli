(** Failure propagation through lumps: an MPI_Abort kills the whole
    lump (Sec. V), so lump size trades scheduling convenience against
    blast radius on flaky systems. *)

type outcome = {
  lump_nodes : int;
  makespan : float;
  lumps_lost : int;
  nodes_lost : int;
  tasks_requeued : int;
  completed : int;
  capacity_left : float;
}

val run :
  ?abort_prob:float ->
  n_nodes:int ->
  lump_nodes:int ->
  job_nodes:int ->
  n_tasks:int ->
  duration:float ->
  Util.Rng.t ->
  outcome
(** Tasks abort with [abort_prob] on completion; the lump's running
    tasks requeue onto survivors, its nodes are lost.
    @raise Invalid_argument if the lump is smaller than a job. *)

val lump_size_sweep :
  ?abort_prob:float ->
  n_nodes:int ->
  job_nodes:int ->
  n_tasks:int ->
  duration:float ->
  lump_sizes:int list ->
  Util.Rng.t ->
  outcome list
