(* The three job-management strategies compared in the paper:

   - [naive]: bundle tasks into fixed groups, launch each group
     simultaneously and wait for ALL members before starting the next
     ("simply collecting and simultaneously launching HPC steps") —
     the paper measured 20-25% idling from this.
   - [metaq]: METAQ-style backfilling: whenever nodes free up, start
     the next queued task that fits. Hardware-agnostic: allocations
     may be scattered, so tightly-coupled jobs pay a locality penalty
     and the pool fragments over time.
   - [mpi_jm]: lumps are subdivided into blocks whose size is a
     multiple of the job size; jobs are placed inside blocks, so
     allocations stay contiguous and fragmentation never builds up.
     CPU-only contractions co-schedule onto nodes whose GPUs are busy,
     making their cost effectively zero. *)

type outcome = {
  strategy : string;
  makespan : float;
  utilization : float;  (* productive node-time / (nodes x makespan) *)
  allocated_fraction : float;  (* allocation-based (nodes held) *)
  ideal_time : float;  (* total work / nodes: perfect-packing bound *)
  idle_fraction : float;
  tasks_completed : int;
}

(* [productive] = sum over executed tasks of (actual runtime x nodes).
   Under naive bundling nodes stay ALLOCATED after their task finishes
   until the whole bundle completes — that allocated-but-idle time is
   precisely the paper's 20-25% waste, so utilization must be measured
   on productive time, not allocation. *)
let finish ~strategy ~cluster ~makespan ~tasks ~productive =
  let nodes = float_of_int (Cluster.n_nodes cluster) in
  let ideal_time = Task.total_work tasks /. nodes in
  let utilization = if makespan > 0. then productive /. (makespan *. nodes) else 0. in
  {
    strategy;
    makespan;
    utilization;
    allocated_fraction = Cluster.utilization cluster ~makespan;
    ideal_time;
    idle_fraction = 1. -. utilization;
    tasks_completed = List.length tasks;
  }

(* ---- naive bundling ---- *)

let naive ~cluster ~tasks =
  let des = Des.create () in
  let productive = ref 0. in
  let queue = Queue.create () in
  List.iter (fun t -> Queue.add t queue) tasks;
  let rec launch_bundle () =
    if not (Queue.is_empty queue) then begin
      (* fill the machine with as many whole-task allocations as fit *)
      let bundle = ref [] in
      let exception Stop in
      (try
         while not (Queue.is_empty queue) do
           let t = Queue.peek queue in
           match Cluster.find_free_nodes cluster t.Task.nodes with
           | Some ids ->
             ignore (Queue.pop queue);
             Cluster.allocate_nodes cluster ~time:(Des.now des) ids;
             bundle := (t, ids) :: !bundle
           | None -> raise Stop
         done
       with Stop -> ());
      (* run all; release only when the whole bundle is done *)
      let remaining = ref (List.length !bundle) in
      List.iter
        (fun ((t : Task.t), ids) ->
          let speed = Cluster.allocation_speed cluster ids in
          let runtime = t.Task.base_duration /. speed in
          productive := !productive +. (runtime *. float_of_int t.Task.nodes);
          Des.schedule des ~delay:runtime (fun () ->
              decr remaining;
              if !remaining = 0 then begin
                (* bundle barrier: everyone releases together *)
                List.iter
                  (fun (_, ids) ->
                    Cluster.release_nodes cluster ~time:(Des.now des) ids)
                  !bundle;
                launch_bundle ()
              end))
        !bundle
    end
  in
  launch_bundle ();
  Des.run des;
  finish ~strategy:"naive bundling" ~cluster ~makespan:(Des.now des) ~tasks
    ~productive:!productive

(* ---- METAQ backfilling ---- *)

let metaq ?(locality_penalty = true) ~cluster ~tasks () =
  let des = Des.create () in
  let productive = ref 0. in
  let queue = Queue.create () in
  List.iter (fun t -> Queue.add t queue) tasks;
  let completed = ref 0 in
  let rec try_start () =
    (* first-fit from the head of the queue; scattered nodes allowed *)
    if not (Queue.is_empty queue) then begin
      let t = Queue.peek queue in
      match Cluster.find_free_nodes cluster t.Task.nodes with
      | None -> ()
      | Some ids ->
        ignore (Queue.pop queue);
        Cluster.allocate_nodes cluster ~time:(Des.now des) ids;
        let speed = Cluster.allocation_speed cluster ids in
        let loc = if locality_penalty then Cluster.locality_factor cluster ids else 1. in
        let runtime = t.Task.base_duration /. (speed *. loc) in
        (* the locality slowdown is lost time, not productive work *)
        productive :=
          !productive +. (t.Task.base_duration /. speed *. float_of_int t.Task.nodes);
        Des.schedule des ~delay:runtime (fun () ->
            Cluster.release_nodes cluster ~time:(Des.now des) ids;
            incr completed;
            try_start ());
        try_start ()
    end
  in
  try_start ();
  Des.run des;
  finish ~strategy:"METAQ backfill" ~cluster ~makespan:(Des.now des) ~tasks
    ~productive:!productive

(* ---- mpi_jm ---- *)

(* Blocks of [block_nodes] (a multiple of the largest job) partition
   the cluster; a job is placed inside a single block, keeping its
   nodes close. Contractions co-schedule on busy nodes' CPUs. *)
let mpi_jm ?(block_nodes = 8) ~cluster ~tasks () =
  let des = Des.create () in
  let productive = ref 0. in
  let n_blocks = Cluster.n_nodes cluster / block_nodes in
  (* free node ids per block; nodes of one block are consecutive, so
     any subset stays local *)
  let block_free =
    Array.init n_blocks (fun b ->
        ref (List.init block_nodes (fun i -> (b * block_nodes) + i)))
  in
  let queue = Queue.create () in
  let cpu_queue = Queue.create () in
  List.iter
    (fun (t : Task.t) ->
      match t.Task.kind with
      | Task.Propagator -> Queue.add t queue
      | Task.Contraction -> Queue.add t cpu_queue)
    tasks;
  let completed = ref 0 in
  (* Contractions are absorbed by co-scheduling: they run on the CPUs
     of nodes busy with propagators, consuming no node allocations.
     (The GPUs never wait on them; Sec. VI measures their cost as
     fully amortized.) We count them done as their data dependencies
     (one batch per few propagators) complete. *)
  let rec try_start () =
    if not (Queue.is_empty queue) then begin
      let t = Queue.peek queue in
      (* find a block with room *)
      let blk = ref (-1) in
      for b = n_blocks - 1 downto 0 do
        if List.length !(block_free.(b)) >= t.Task.nodes then blk := b
      done;
      if !blk >= 0 then begin
        ignore (Queue.pop queue);
        let b = !blk in
        let free = !(block_free.(b)) in
        let ids = Array.of_list (List.filteri (fun i _ -> i < t.Task.nodes) free) in
        block_free.(b) :=
          List.filteri (fun i _ -> i >= t.Task.nodes) free;
        Cluster.allocate_nodes cluster ~time:(Des.now des) ids;
        let speed = Cluster.allocation_speed cluster ids in
        let runtime = t.Task.base_duration /. speed in
        productive := !productive +. (runtime *. float_of_int t.Task.nodes);
        Des.schedule des ~delay:runtime (fun () ->
            Cluster.release_nodes cluster ~time:(Des.now des) ids;
            block_free.(b) := Array.to_list ids @ !(block_free.(b));
            incr completed;
            (* a contraction rides along for free *)
            if not (Queue.is_empty cpu_queue) then ignore (Queue.pop cpu_queue);
            try_start ());
        try_start ()
      end
    end
  in
  try_start ();
  Des.run des;
  (* contraction work was absorbed: count it in "tasks" for the ideal
     bound only via propagators actually allocated *)
  let prop_tasks = List.filter (fun t -> t.Task.kind = Task.Propagator) tasks in
  finish ~strategy:"mpi_jm" ~cluster ~makespan:(Des.now des) ~tasks:prop_tasks
    ~productive:!productive
