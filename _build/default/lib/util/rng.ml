(* xoshiro256** by Blackman & Vigna: fast, 2^256-1 period, and — unlike
   Stdlib.Random — stable across OCaml releases, so every test and bench
   in this repository is reproducible bit-for-bit from a seed. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64, used to expand a single seed into a full xoshiro state. *)
let splitmix64_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Derive an independent stream: hash the parent's next output through
     splitmix64 so parent and child sequences do not overlap in practice. *)
  let state = ref (next_int64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int (bound - 1) in
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.logand (next_int64 t) mask)
  else
    let rec loop () =
      let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then loop () else v
    in
    loop ()

let gaussian t =
  (* Marsaglia polar method; no cached second value, to keep [copy]
     and [split] semantics trivial. *)
  let rec loop () =
    let x = uniform t ~lo:(-1.) ~hi:1. in
    let y = uniform t ~lo:(-1.) ~hi:1. in
    let s = (x *. x) +. (y *. y) in
    if s >= 1. || s = 0. then loop ()
    else x *. sqrt (-2. *. log s /. s)
  in
  loop ()

let gaussian_sigma t ~mu ~sigma = mu +. (sigma *. gaussian t)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean = -.mean *. log (1. -. float t)
