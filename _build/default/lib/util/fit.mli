(** Least-squares fitting: dense solves, linear LSQ, Levenberg–Marquardt. *)

exception Singular

val solve_linear_system : float array -> float array -> float array
(** [solve_linear_system a b] solves the n×n row-major system [a] x = [b]. *)

val invert_matrix : float array -> int -> float array
(** [invert_matrix a n] inverts the n×n row-major matrix.
    @raise Singular if not invertible. *)

type result = {
  params : float array;
  errors : float array;
  covariance : float array;
  chi2 : float;
  dof : int;
  converged : bool;
  iterations : int;
}

val chi2_of :
  model:(float array -> float -> float) ->
  xs:float array ->
  ys:float array ->
  sigmas:float array ->
  float array ->
  float

val levenberg_marquardt :
  ?max_iter:int ->
  ?tol:float ->
  model:(float array -> float -> float) ->
  xs:float array ->
  ys:float array ->
  sigmas:float array ->
  float array ->
  result
(** Nonlinear weighted least squares with numerical Jacobian.
    [model params x] evaluates the fit function. *)

val linear_lsq :
  basis:(float -> float) array ->
  xs:float array ->
  ys:float array ->
  sigmas:float array ->
  result
(** Weighted linear least squares over the given basis functions. *)

val constant_fit : ys:float array -> sigmas:float array -> result
(** Weighted fit to a constant (plateau fit). *)
