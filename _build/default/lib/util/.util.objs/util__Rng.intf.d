lib/util/rng.mli:
