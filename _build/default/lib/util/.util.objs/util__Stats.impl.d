lib/util/stats.ml: Array Rng
