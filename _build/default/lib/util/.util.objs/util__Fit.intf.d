lib/util/fit.mli:
