lib/util/ascii.mli: Stats
