(** Deterministic, splittable pseudo-random numbers (xoshiro256 starstar).

    Every stochastic component of the library threads one of these
    explicitly; nothing uses global state, so experiments are
    reproducible from their seeds. *)

type t

val create : int -> t
(** [create seed] builds a generator from a seed via splitmix64. *)

val split : t -> t
(** [split t] returns a statistically independent child stream and
    advances [t]. *)

val copy : t -> t

val next_int64 : t -> int64
val float : t -> float
(** Uniform in [0,1). *)

val uniform : t -> lo:float -> hi:float -> float
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); bias-free. *)

val gaussian : t -> float
(** Standard normal deviate. *)

val gaussian_sigma : t -> mu:float -> sigma:float -> float
val bool : t -> bool
val shuffle : t -> 'a array -> unit
val exponential : t -> mean:float -> float
