(** ASCII rendering of tables, plots and histograms for bench output. *)

val si_float : ?digits:int -> float -> string
(** Format with SI magnitude suffix (k/M/G/T/P/E, m/u/n). *)

val flops : ?digits:int -> float -> string
val bytes_per_sec : ?digits:int -> float -> string
val seconds : float -> string

val render_table : header:string list -> string list list -> string
val print_table : header:string list -> string list list -> unit

type series = { label : string; points : (float * float) array; glyph : char }

val series : ?glyph:char -> string -> (float * float) array -> series

val render_plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?logx:bool ->
  ?zero_y:bool ->
  series list ->
  string
(** [zero_y] (default true) pins the y-axis to include zero. *)

val print_plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?logx:bool ->
  ?zero_y:bool ->
  series list ->
  unit

val render_histogram : ?width:int -> Stats.histogram -> string
val print_histogram : ?width:int -> Stats.histogram -> unit

val banner : string -> unit
(** Print a section banner. *)
