(* Terminal rendering for the benchmark harness: aligned tables,
   scatter/line plots, and histograms, so each figure of the paper can
   be "re-drawn" in the bench output without a plotting stack. *)

let si_float ?(digits = 3) v =
  let fmt mag suffix = Printf.sprintf "%.*f %s" digits (v /. mag) suffix in
  let a = abs_float v in
  if a = 0. then "0"
  else if a >= 1e18 then fmt 1e18 "E"
  else if a >= 1e15 then fmt 1e15 "P"
  else if a >= 1e12 then fmt 1e12 "T"
  else if a >= 1e9 then fmt 1e9 "G"
  else if a >= 1e6 then fmt 1e6 "M"
  else if a >= 1e3 then fmt 1e3 "k"
  else if a >= 1. then Printf.sprintf "%.*f" digits v
  else if a >= 1e-3 then fmt 1e-3 "m"
  else if a >= 1e-6 then fmt 1e-6 "u"
  else fmt 1e-9 "n"

let flops ?digits v = si_float ?digits v ^ "Flop/s"
let bytes_per_sec ?digits v = si_float ?digits v ^ "B/s"

let seconds v =
  if v >= 3600. then Printf.sprintf "%.2f h" (v /. 3600.)
  else if v >= 60. then Printf.sprintf "%.2f min" (v /. 60.)
  else if v >= 1. then Printf.sprintf "%.2f s" v
  else if v >= 1e-3 then Printf.sprintf "%.2f ms" (v *. 1e3)
  else if v >= 1e-6 then Printf.sprintf "%.2f us" (v *. 1e6)
  else Printf.sprintf "%.2f ns" (v *. 1e9)

(* ---- Tables ---- *)

let render_table ~header rows =
  let all = header :: rows in
  let n_cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let cell r i = try List.nth r i with _ -> "" in
  let widths =
    Array.init n_cols (fun i ->
        List.fold_left (fun m r -> max m (String.length (cell r i))) 0 all)
  in
  let buf = Buffer.create 1024 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row r =
    Buffer.add_char buf '|';
    Array.iteri
      (fun i w ->
        let c = cell r i in
        Buffer.add_string buf
          (Printf.sprintf " %s%s |" c (String.make (w - String.length c) ' ')))
      widths;
    Buffer.add_char buf '\n'
  in
  sep ();
  row header;
  sep ();
  List.iter row rows;
  sep ();
  Buffer.contents buf

let print_table ~header rows = print_string (render_table ~header rows)

(* ---- Plots ---- *)

type series = { label : string; points : (float * float) array; glyph : char }

let series ?(glyph = '*') label points = { label; points; glyph }

let render_plot ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y")
    ?(logx = false) ?(zero_y = true) series_list =
  let all_points = List.concat_map (fun s -> Array.to_list s.points) series_list in
  match all_points with
  | [] -> "(empty plot)\n"
  | _ ->
    let tx x = if logx then log10 (Float.max x 1e-30) else x in
    let xs = List.map (fun (x, _) -> tx x) all_points in
    let ys = List.map snd all_points in
    let xmin = List.fold_left Float.min infinity xs in
    let xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = List.fold_left Float.min infinity ys in
    let ymax = List.fold_left Float.max neg_infinity ys in
    let ymin = if zero_y then Float.min ymin 0. else ymin in
    let xspan = if xmax > xmin then xmax -. xmin else 1. in
    let yspan = if ymax > ymin then ymax -. ymin else 1. in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        Array.iter
          (fun (x, y) ->
            let cx =
              int_of_float ((tx x -. xmin) /. xspan *. float_of_int (width - 1))
            in
            let cy =
              height - 1
              - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
            in
            if cx >= 0 && cx < width && cy >= 0 && cy < height then
              grid.(cy).(cx) <- s.glyph)
          s.points)
      series_list;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      (Printf.sprintf "  %s (top=%s bottom=%s)\n" y_label (si_float ymax)
         (si_float ymin));
    Array.iter
      (fun line ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) line;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "   %s: %s .. %s%s\n" x_label
         (si_float (if logx then 10. ** xmin else xmin))
         (si_float (if logx then 10. ** xmax else xmax))
         (if logx then " (log)" else ""));
    List.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf "   [%c] %s\n" s.glyph s.label))
      series_list;
    Buffer.contents buf

let print_plot ?width ?height ?x_label ?y_label ?logx ?zero_y series_list =
  print_string
    (render_plot ?width ?height ?x_label ?y_label ?logx ?zero_y series_list)

let render_histogram ?(width = 50) (h : Stats.histogram) =
  let centers = Stats.histogram_bin_centers h in
  let peak = Array.fold_left max 1 h.counts in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i c ->
      let bar = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "  %10s | %s %d\n"
           (si_float ~digits:2 centers.(i))
           (String.make bar '#') c))
    h.counts;
  Buffer.add_string buf (Printf.sprintf "  (%d entries)\n" h.n_total);
  Buffer.contents buf

let print_histogram ?width h = print_string (render_histogram ?width h)

let banner title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n== %s\n%s\n" line title line
