(* Least-squares fitting for correlator analysis: dense linear solves,
   linear LSQ, and Levenberg-Marquardt for the nonlinear multi-state
   fits that extract gA from effective-coupling data. *)

exception Singular

(* Solve A x = b in place by Gaussian elimination with partial pivoting.
   A is n*n row-major; both A and b are clobbered. Returns x = b. *)
let solve_in_place a b n =
  for col = 0 to n - 1 do
    (* pivot *)
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if abs_float a.((r * n) + col) > abs_float a.((!piv * n) + col) then piv := r
    done;
    if abs_float a.((!piv * n) + col) < 1e-300 then raise Singular;
    if !piv <> col then begin
      for c = 0 to n - 1 do
        let tmp = a.((col * n) + c) in
        a.((col * n) + c) <- a.((!piv * n) + c);
        a.((!piv * n) + c) <- tmp
      done;
      let tmp = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tmp
    end;
    let inv_diag = 1. /. a.((col * n) + col) in
    for r = col + 1 to n - 1 do
      let f = a.((r * n) + col) *. inv_diag in
      if f <> 0. then begin
        for c = col to n - 1 do
          a.((r * n) + c) <- a.((r * n) + c) -. (f *. a.((col * n) + c))
        done;
        b.(r) <- b.(r) -. (f *. b.(col))
      end
    done
  done;
  for r = n - 1 downto 0 do
    let acc = ref b.(r) in
    for c = r + 1 to n - 1 do
      acc := !acc -. (a.((r * n) + c) *. b.(c))
    done;
    b.(r) <- !acc /. a.((r * n) + r)
  done;
  b

let solve_linear_system a b =
  let n = Array.length b in
  if Array.length a <> n * n then invalid_arg "Fit.solve_linear_system: shape";
  solve_in_place (Array.copy a) (Array.copy b) n

(* Invert a symmetric positive matrix by solving against unit vectors. *)
let invert_matrix a n =
  let inv = Array.make (n * n) 0. in
  for col = 0 to n - 1 do
    let e = Array.make n 0. in
    e.(col) <- 1.;
    let x = solve_in_place (Array.copy a) e n in
    for r = 0 to n - 1 do
      inv.((r * n) + col) <- x.(r)
    done
  done;
  inv

type result = {
  params : float array;
  errors : float array;  (* sqrt of covariance diagonal *)
  covariance : float array;  (* row-major n_params^2 *)
  chi2 : float;
  dof : int;
  converged : bool;
  iterations : int;
}

let chi2_of ~model ~xs ~ys ~sigmas params =
  let acc = ref 0. in
  for i = 0 to Array.length xs - 1 do
    let r = (ys.(i) -. model params xs.(i)) /. sigmas.(i) in
    acc := !acc +. (r *. r)
  done;
  !acc

(* Forward-difference Jacobian of the residual vector. *)
let jacobian ~model ~xs ~sigmas params =
  let np = Array.length params and nd = Array.length xs in
  let jac = Array.make (nd * np) 0. in
  let base = Array.init nd (fun i -> model params xs.(i)) in
  for j = 0 to np - 1 do
    let h = 1e-7 *. (abs_float params.(j) +. 1e-7) in
    let p = Array.copy params in
    p.(j) <- p.(j) +. h;
    for i = 0 to nd - 1 do
      jac.((i * np) + j) <- (model p xs.(i) -. base.(i)) /. (h *. sigmas.(i))
    done
  done;
  jac

(* Levenberg-Marquardt. The normal-equation matrix is damped as
   JtJ + lambda*diag(JtJ); lambda shrinks on accepted steps. *)
let levenberg_marquardt ?(max_iter = 200) ?(tol = 1e-10) ~model ~xs ~ys ~sigmas
    initial =
  let nd = Array.length xs and np = Array.length initial in
  if Array.length ys <> nd || Array.length sigmas <> nd then
    invalid_arg "Fit.levenberg_marquardt: data length mismatch";
  if nd < np then invalid_arg "Fit.levenberg_marquardt: under-determined";
  let params = Array.copy initial in
  let lambda = ref 1e-3 in
  let chi2 = ref (chi2_of ~model ~xs ~ys ~sigmas params) in
  let converged = ref false in
  let iters = ref 0 in
  (try
     while (not !converged) && !iters < max_iter do
       incr iters;
       let jac = jacobian ~model ~xs ~sigmas params in
       (* JtJ and Jt r *)
       let jtj = Array.make (np * np) 0. in
       let jtr = Array.make np 0. in
       for i = 0 to nd - 1 do
         let ri = (ys.(i) -. model params xs.(i)) /. sigmas.(i) in
         for a = 0 to np - 1 do
           let ja = jac.((i * np) + a) in
           jtr.(a) <- jtr.(a) +. (ja *. ri);
           for b = 0 to np - 1 do
             jtj.((a * np) + b) <- jtj.((a * np) + b) +. (ja *. jac.((i * np) + b))
           done
         done
       done;
       let damped = Array.copy jtj in
       for a = 0 to np - 1 do
         damped.((a * np) + a) <- damped.((a * np) + a) *. (1. +. !lambda)
       done;
       let step =
         try Some (solve_in_place damped (Array.copy jtr) np)
         with Singular -> None
       in
       match step with
       | None -> lambda := !lambda *. 10.
       | Some dx ->
         let trial = Array.mapi (fun j p -> p +. dx.(j)) params in
         let trial_chi2 = chi2_of ~model ~xs ~ys ~sigmas trial in
         if trial_chi2 <= !chi2 then begin
           let delta = !chi2 -. trial_chi2 in
           Array.blit trial 0 params 0 np;
           chi2 := trial_chi2;
           lambda := Float.max (!lambda /. 10.) 1e-12;
           if delta < tol *. (1. +. !chi2) then converged := true
         end
         else begin
           lambda := !lambda *. 10.;
           if !lambda > 1e12 then converged := true
         end
     done
   with Singular -> ());
  (* Covariance from the undamped JtJ at the solution. *)
  let jac = jacobian ~model ~xs ~sigmas params in
  let jtj = Array.make (np * np) 0. in
  for i = 0 to nd - 1 do
    for a = 0 to np - 1 do
      for b = 0 to np - 1 do
        jtj.((a * np) + b) <-
          jtj.((a * np) + b) +. (jac.((i * np) + a) *. jac.((i * np) + b))
      done
    done
  done;
  let covariance =
    try invert_matrix jtj np with Singular -> Array.make (np * np) nan
  in
  let errors = Array.init np (fun a -> sqrt (abs_float covariance.((a * np) + a))) in
  {
    params;
    errors;
    covariance;
    chi2 = !chi2;
    dof = nd - np;
    converged = !converged;
    iterations = !iters;
  }

(* Linear least squares: design matrix given as basis functions. *)
let linear_lsq ~basis ~xs ~ys ~sigmas =
  let np = Array.length basis and nd = Array.length xs in
  if nd < np then invalid_arg "Fit.linear_lsq: under-determined";
  let ata = Array.make (np * np) 0. in
  let atb = Array.make np 0. in
  for i = 0 to nd - 1 do
    let w = 1. /. (sigmas.(i) *. sigmas.(i)) in
    let row = Array.map (fun f -> f xs.(i)) basis in
    for a = 0 to np - 1 do
      atb.(a) <- atb.(a) +. (w *. row.(a) *. ys.(i));
      for b = 0 to np - 1 do
        ata.((a * np) + b) <- ata.((a * np) + b) +. (w *. row.(a) *. row.(b))
      done
    done
  done;
  let covariance = invert_matrix ata np in
  let params =
    Array.init np (fun a ->
        let acc = ref 0. in
        for b = 0 to np - 1 do
          acc := !acc +. (covariance.((a * np) + b) *. atb.(b))
        done;
        !acc)
  in
  let model p x =
    let acc = ref 0. in
    Array.iteri (fun j f -> acc := !acc +. (p.(j) *. f x)) basis;
    !acc
  in
  let chi2 = chi2_of ~model ~xs ~ys ~sigmas params in
  let errors = Array.init np (fun a -> sqrt (abs_float covariance.((a * np) + a))) in
  {
    params;
    errors;
    covariance;
    chi2;
    dof = nd - np;
    converged = true;
    iterations = 1;
  }

let constant_fit ~ys ~sigmas =
  let xs = Array.mapi (fun i _ -> float_of_int i) ys in
  linear_lsq ~basis:[| (fun _ -> 1.) |] ~xs ~ys ~sigmas
