(* Quark propagators: 12 domain-wall solves (4 spins x 3 colors) from a
   common source, giving the 4D point-to-all propagator
   G(x; src)_{spin,color; src_spin,src_color} — the numerically
   expensive ingredient of the workflow (Fig 2: ~97% of execution). *)

module Field = Linalg.Field
module Geometry = Lattice.Geometry
module Cplx = Linalg.Cplx

let fps = Dirac.Gamma.floats_per_site

type t = {
  geom : Geometry.t;
  columns : Field.t array;  (* index src_spin*3 + src_color; 4D fields *)
  midpoint : Field.t array option;
      (* 5D-midpoint columns, for the residual-mass current J5q *)
  stats : Solver.Cg.stats list;  (* per-column solver statistics *)
}

let column_index ~spin ~color = (spin * 3) + color

(* The "midpoint" 4D field of a 5D solution: the pseudoscalar density
   J5q that measures residual chiral symmetry breaking lives at
   s = L5/2: q_mid = P- psi(L5/2) + P+ psi(L5/2 - 1). *)
let midpoint_4d ~l5 geom (psi : Field.t) : Field.t =
  let vol = Geometry.volume geom in
  let q = Field.create (vol * fps) in
  let s_minus = l5 / 2 and s_plus = (l5 / 2) - 1 in
  let b_minus = s_minus * vol * fps and b_plus = s_plus * vol * fps in
  for site = 0 to vol - 1 do
    let o = site * fps in
    (* P- component (spins 2,3) from slice L5/2 *)
    for k = 12 to 23 do
      Bigarray.Array1.set q (o + k) (Bigarray.Array1.get psi (b_minus + o + k))
    done;
    (* P+ component (spins 0,1) from slice L5/2 - 1 *)
    for k = 0 to 11 do
      Bigarray.Array1.set q (o + k) (Bigarray.Array1.get psi (b_plus + o + k))
    done
  done;
  q

(* Solve the 12 columns for a 4D source builder. [keep_midpoint] also
   extracts the 5D-midpoint field of each column. *)
let compute ?(precision = Solver.Dwf_solve.Double) ?(tol = 1e-10)
    ?(keep_midpoint = false) (solver : Solver.Dwf_solve.t)
    ~(source : spin:int -> color:int -> Field.t) =
  let geom = solver.Solver.Dwf_solve.geom in
  let l5 = solver.Solver.Dwf_solve.params.Dirac.Mobius.l5 in
  let stats = ref [] in
  let midpoints = ref [] in
  let columns =
    Array.init 12 (fun idx ->
        let spin = idx / 3 and color = idx mod 3 in
        let eta = source ~spin ~color in
        let rhs = Source.to_5d ~l5 geom eta in
        let x5, st = Solver.Dwf_solve.solve ~precision ~tol solver ~rhs in
        stats := st :: !stats;
        if keep_midpoint then midpoints := midpoint_4d ~l5 geom x5 :: !midpoints;
        Source.to_4d ~l5 geom x5)
  in
  {
    geom;
    columns;
    midpoint =
      (if keep_midpoint then Some (Array.of_list (List.rev !midpoints)) else None);
    stats = List.rev !stats;
  }

let point_propagator ?precision ?tol ?keep_midpoint solver ~src_site =
  compute ?precision ?tol ?keep_midpoint solver ~source:(fun ~spin ~color ->
      Source.point (Solver.Dwf_solve.geom_of solver) ~site:src_site ~spin ~color)

(* G(site)_{s,c; s0,c0} *)
let get t ~site ~spin ~color ~src_spin ~src_color =
  let col = t.columns.(column_index ~spin:src_spin ~color:src_color) in
  let o = (site * fps) + (((spin * 3) + color) * 2) in
  Cplx.make (Bigarray.Array1.get col o) (Bigarray.Array1.get col (o + 1))

let total_flops t =
  List.fold_left (fun acc st -> acc +. st.Solver.Cg.flops) 0. t.stats

let total_iterations t =
  List.fold_left (fun acc st -> acc + st.Solver.Cg.iterations) 0 t.stats

let total_seconds t =
  List.fold_left (fun acc st -> acc +. st.Solver.Cg.seconds) 0. t.stats

(* Build a derived propagator by applying a map to every column
   (e.g. a Feynman-Hellmann solve). Midpoint data does not transport. *)
let map t f = { t with columns = Array.map f t.columns; midpoint = None }

(* Pseudoscalar-density correlators used by the residual-mass
   measurement: sum_x <J(x,t) J(0)> built from column overlaps. *)
let density_correlator geom (a : Field.t array) (b : Field.t array) =
  let nt = Geometry.time_extent geom in
  let c = Array.make nt 0. in
  Geometry.iter_sites geom (fun site ->
      let t = (Geometry.coords geom site).(3) in
      let acc = ref 0. in
      Array.iteri
        (fun col col_a ->
          let col_b = b.(col) in
          for k = 0 to fps - 1 do
            acc :=
              !acc
              +. (Bigarray.Array1.get col_a ((site * fps) + k)
                 *. Bigarray.Array1.get col_b ((site * fps) + k))
          done)
        a;
      c.(t) <- c.(t) +. !acc);
  c

(* Residual mass from the midpoint current:
     m_res = sum_t <J5q(t) P(0)> / sum_t <P(t) P(0)>
   (the standard DWF definition; -> 0 as L5 -> infinity). Requires a
   propagator computed with ~keep_midpoint:true. *)
let residual_mass t =
  match t.midpoint with
  | None -> invalid_arg "Propagator.residual_mass: need keep_midpoint:true"
  | Some mid ->
    let j5q = density_correlator t.geom mid mid in
    let pp = density_correlator t.geom t.columns t.columns in
    let num = ref 0. and den = ref 0. in
    (* skip t=0 (contact terms) *)
    for tt = 1 to Array.length pp - 1 do
      num := !num +. j5q.(tt);
      den := !den +. pp.(tt)
    done;
    !num /. !den
