(** Quark propagators: 12 domain-wall solves (4 spins × 3 colors) from
    a common source — the expensive ingredient of the workflow (~97% of
    execution in the paper). *)

type t = {
  geom : Lattice.Geometry.t;
  columns : Linalg.Field.t array;  (** index src_spin·3 + src_color *)
  midpoint : Linalg.Field.t array option;
      (** 5D-midpoint columns (residual-mass current), when requested *)
  stats : Solver.Cg.stats list;
}

val column_index : spin:int -> color:int -> int

val midpoint_4d : l5:int -> Lattice.Geometry.t -> Linalg.Field.t -> Linalg.Field.t
(** The J5q wall of a 5D solution: P− ψ(L5/2) + P+ ψ(L5/2 − 1). *)

val compute :
  ?precision:Solver.Dwf_solve.precision ->
  ?tol:float ->
  ?keep_midpoint:bool ->
  Solver.Dwf_solve.t ->
  source:(spin:int -> color:int -> Linalg.Field.t) ->
  t

val point_propagator :
  ?precision:Solver.Dwf_solve.precision ->
  ?tol:float ->
  ?keep_midpoint:bool ->
  Solver.Dwf_solve.t ->
  src_site:int ->
  t

val get :
  t -> site:int -> spin:int -> color:int -> src_spin:int -> src_color:int ->
  Linalg.Cplx.t
(** G(site)_{spin,color; src_spin,src_color}. *)

val total_flops : t -> float
val total_iterations : t -> int
val total_seconds : t -> float

val map : t -> (Linalg.Field.t -> Linalg.Field.t) -> t
(** Column-wise derived propagator (e.g. an FH solve). Midpoint data
    does not transport. *)

val residual_mass : t -> float
(** m_res = Σt ⟨J5q(t)P(0)⟩ / Σt ⟨P(t)P(0)⟩ — the standard domain-wall
    chiral-symmetry-breaking measure; → 0 as L5 → ∞. Requires
    [keep_midpoint:true].
    @raise Invalid_argument otherwise. *)
