(** Sources and the 4D ↔ 5D domain-wall boundary maps. *)

val fps : int
(** 24 floats per 4D spinor site. *)

val point : Lattice.Geometry.t -> site:int -> spin:int -> color:int -> Linalg.Field.t
val wall : Lattice.Geometry.t -> t:int -> spin:int -> color:int -> Linalg.Field.t

val noise : Lattice.Geometry.t -> Util.Rng.t -> t:int -> Linalg.Field.t
(** Gaussian noise on one timeslice (stochastic estimators). *)

val to_5d : l5:int -> Lattice.Geometry.t -> Linalg.Field.t -> Linalg.Field.t
(** 4D source → 5D domain-wall source:
    B = P+ η on slice 0, P− η on slice L5−1. *)

val to_4d : l5:int -> Lattice.Geometry.t -> Linalg.Field.t -> Linalg.Field.t
(** 5D solution → 4D quark field at the walls:
    q = P− ψ(0) + P+ ψ(L5−1). *)

val apply_spin_matrix :
  Linalg.Cplx.t array array -> Linalg.Field.t -> Linalg.Field.t
(** Apply a 4×4 spin matrix to every site of a 4D field. *)
