(** Hadron contractions (the CPU-only 3% of the workflow): pion and
    proton two-point functions via explicit Wick contraction. *)

val epsilon : (int * int * int * float) array
(** The six color permutations with signs. *)

val c_gamma5 : Linalg.Cplx.t array array
(** The diquark matrix Cγ5 (DeGrand–Rossi: C = γt·γy). *)

val parity_projector : Linalg.Cplx.t array array
(** (1 + γt)/2 — forward-propagating nucleon. *)

val polarized_projector : Linalg.Cplx.t array array
(** (1 + γt)/2 · (1 − iγxγy)/2 — for the axial-charge measurement. *)

val pion : Propagator.t -> float array
(** γ5–γ5 correlator: C(t) = Σ_x |G(x)|² by γ5-hermiticity. *)

val proton_general :
  projector:Linalg.Cplx.t array array ->
  u1:Propagator.t ->
  u2:Propagator.t ->
  d:Propagator.t ->
  Linalg.Cplx.t array
(** The two-term proton Wick contraction with independently
    substitutable up-quark legs (for Feynman–Hellmann insertions). *)

val proton :
  ?projector:Linalg.Cplx.t array array ->
  up:Propagator.t ->
  down:Propagator.t ->
  unit ->
  float array
