(** Correlator analysis: effective masses/couplings, resampled errors,
    and the profile (variable-projection) fits that extract gA. *)

val effective_mass : float array -> float array
(** m_eff(t) = ln C(t)/C(t+1); NaN where the ratio is non-positive. *)

val ensemble_mean : float array array -> float array
(** Samples × t → per-timeslice mean. *)

val ensemble_error : float array array -> float array
(** Standard error of the mean per timeslice. *)

val bootstrap_observable :
  rng:Util.Rng.t ->
  n_boot:int ->
  float array array ->
  (float array -> float array) ->
  float array * float array
(** Observable of the ensemble mean, with bootstrap errors:
    [(central, error)] per output index. *)

val geff_model : float array -> float -> float
(** Two-state form g00 + b01·e^{−dE·t} + b11·t·e^{−dE·t} with
    p = [g00; b01; b11; dE]. *)

type ga_fit = {
  ga : float;
  ga_err : float;
  de : float;
  chi2_dof : float;
  fit : Util.Fit.result;
  t_range : int * int;
}

val de_grid : float array
(** Profile grid for the gap — bounded below by ~2·mπ, the Bayesian
    prior of the real analysis. *)

val profile_fit :
  ?prior:bool ->
  xs:float array ->
  ys:float array ->
  sigmas:float array ->
  unit ->
  float * Util.Fit.result
(** Variable projection: linear LSQ in the amplitudes at each grid
    gap, minimum (prior-penalized) χ² wins. Returns (dE, fit). *)

val fit_geff :
  rng:Util.Rng.t ->
  n_boot:int ->
  float array array ->
  observable:(float array -> float array) ->
  t_min:int ->
  t_max:int ->
  ga_fit
(** The Fig-1 fit: bootstrap errors per point, profile fit on the
    mean, bootstrap of the whole fit for the gA error. *)

val fit_plateau :
  mean:float array -> err:float array -> t_min:int -> t_max:int -> float * float
(** Weighted constant fit (the traditional method's late-time
    estimator). *)
