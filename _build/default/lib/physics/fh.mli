(** The Feynman–Hellmann method [Bouchard et al., PRD 96 014504] — the
    paper's physics-algorithm contribution — plus the sequential
    (fixed-insertion-time) traditional baseline it replaces. *)

val axial_matrix : Linalg.Cplx.t array array
(** A3 = γz·γ5. *)

val fh_propagator :
  ?precision:Solver.Dwf_solve.precision ->
  ?tol:float ->
  Solver.Dwf_solve.t ->
  Propagator.t ->
  Propagator.t
(** One extra solve per column against the current-inserted propagator:
    D ψ_FH = Γ q, insertion summed over all of spacetime. *)

val fh_proton_correlator :
  up:Propagator.t ->
  down:Propagator.t ->
  fh_up:Propagator.t ->
  fh_down:Propagator.t ->
  float array
(** dC/dλ for the isovector axial current (u − d), polarized projector.
    Purely imaginary in these conventions; returns the imaginary part. *)

val effective_coupling : c2:float array -> c_fh:float array -> float array
(** g_eff(t) = R(t+1) − R(t) with R = C_FH/C. *)

val restrict_timeslice :
  Lattice.Geometry.t -> tau:int -> Linalg.Field.t -> Linalg.Field.t

val sequential_propagator :
  ?precision:Solver.Dwf_solve.precision ->
  ?tol:float ->
  Solver.Dwf_solve.t ->
  tau:int ->
  Propagator.t ->
  Propagator.t
(** Insertion restricted to timeslice [tau]: ONE SOLVE PER τ — the
    traditional cost FH eliminates. By linearity Σ_τ ψ_τ = ψ_FH
    (checked exactly by the test suite). *)

val traditional_3pt :
  up:Propagator.t ->
  down:Propagator.t ->
  seq_up:Propagator.t ->
  seq_down:Propagator.t ->
  float array
(** C3(τ, t) for all sink times t, given the τ-restricted legs. *)

val traditional_ratio :
  c2:float array -> c3:(int * float array) list -> t_sep:int -> (int * float) list
(** g_eff(τ; t_sep) = C3(τ, t_sep)/C2(t_sep). *)
