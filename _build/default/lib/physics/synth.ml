(* Synthetic correlator ensembles calibrated to the a09m310 analysis
   of Fig 1 — the documented stand-in for the paper's ~10,000-
   propagator production campaign (DESIGN.md substitution table).

   The generator implements exactly the statistical physics the figure
   is about:
     - two-state spectral content: C(t) = A0 e^{-E0 t} (1 + r1 e^{-dE t})
     - FH ratio R(t) = g00 (t - t0) with excited-state contamination
       (the small-t curvature of Fig 1),
     - Parisi-Lepage noise: the nucleon signal-to-noise degrades as
       e^{-(E0 - 1.5 m_pi) t}, so late times are exponentially noisy,
     - the traditional estimator's noise is set by the SINK separation
       t_sep, while FH reads the signal from small t.                *)

module Rng = Util.Rng

type params = {
  e0 : float;  (* nucleon mass, lattice units *)
  m_pi : float;
  de : float;  (* excited-state gap *)
  a0 : float;  (* ground-state amplitude *)
  r1 : float;  (* excited/ground amplitude ratio in C(t) *)
  g00 : float;  (* gA (ground-state matrix element) *)
  g01 : float;  (* ground-excited transition contamination in g_eff *)
  g11 : float;  (* excited-excited term *)
  noise0 : float;  (* per-sample relative noise at t = 0 *)
  fh_noise : float;  (* extra per-sample noise on the FH ratio *)
  nt : int;
}

(* Calibrated to the a09m310 ensemble of Refs. [8-10]:
   a = 0.0871 fm, m_pi = 310 MeV, m_N = 1.13 GeV, gA = 1.2711(126). *)
let a09m310 =
  {
    e0 = 0.499;
    m_pi = 0.1369;
    de = 0.40;
    a0 = 1.0;
    r1 = 0.35;
    g00 = 1.2711;
    g01 = -0.34;
    g11 = 0.0;  (* transition term dominates the contamination *)
    noise0 = 0.25;
    fh_noise = 0.50;
    nt = 16;
  }

let noise_growth_rate p = p.e0 -. (1.5 *. p.m_pi)

let c2_mean p t =
  p.a0 *. exp (-.p.e0 *. t) *. (1. +. (p.r1 *. exp (-.p.de *. t)))

(* FH ratio mean with two-state contamination; its finite difference
   is geff_model in Analysis. *)
let ratio_mean p t =
  (* integral of g_eff: g00 t + transition/excited terms *)
  (p.g00 *. t)
  -. (p.g01 /. p.de *. exp (-.p.de *. t))
  -. (p.g11 *. ((t /. p.de) +. (1. /. (p.de *. p.de))) *. exp (-.p.de *. t))

let geff_mean p t =
  ratio_mean p (t +. 1.) -. ratio_mean p t

(* Correlated unit-variance fluctuation field over t: a few smooth
   random modes plus white noise, with coefficients chosen so the
   variance is exactly 1 at every t. *)
let unit_fluctuation rng p =
  let a = Rng.gaussian rng and b = Rng.gaussian rng and c = Rng.gaussian rng in
  Array.init p.nt (fun t ->
      let theta = Float.pi *. float_of_int t /. float_of_int p.nt in
      (0.5 *. a)
      +. (0.5 *. ((b *. sin theta) +. (c *. cos theta)))
      +. (Rng.gaussian rng /. sqrt 2.))

(* Absolute noise on the nucleon correlator: Parisi-Lepage — the
   variance correlator falls like a three-pion state, e^{-3 m_pi t},
   so sigma_abs(t) = noise0 * a0 * e^{-1.5 m_pi t} and the RELATIVE
   noise grows like e^{(E0 - 1.5 m_pi) t}. Additive and Gaussian:
   individual samples can (physically!) fluctuate negative at late t. *)
let sigma_abs p t = p.noise0 *. p.a0 *. exp (-1.5 *. p.m_pi *. t)

(* One sample of (C(t), C_FH(t)): the fluctuations of C are shared by
   C_FH (same gauge configuration and source) scaled by the ratio, with
   an extra independent FH component controlling g_eff noise. *)
let sample rng p =
  let shared = unit_fluctuation rng p in
  let extra = unit_fluctuation rng p in
  let c2 =
    Array.init p.nt (fun t ->
        let tf = float_of_int t in
        c2_mean p tf +. (sigma_abs p tf *. shared.(t)))
  in
  let c_fh =
    Array.init p.nt (fun t ->
        let tf = float_of_int t in
        (c2_mean p tf *. ratio_mean p tf)
        +. (sigma_abs p tf *. ratio_mean p tf *. shared.(t))
        +. (sigma_abs p tf *. p.fh_noise *. extra.(t)))
  in
  (c2, c_fh)

(* Ensemble of n samples; returns (c2 samples, c_fh samples). *)
let ensemble rng p ~n =
  let c2s = Array.make n [||] and fhs = Array.make n [||] in
  for i = 0 to n - 1 do
    let c2, fh = sample rng p in
    c2s.(i) <- c2;
    fhs.(i) <- fh
  done;
  (c2s, fhs)

(* Paired observable for Analysis.bootstrap: concatenate (c2 | c_fh)
   per sample so resampling keeps them correlated. *)
let paired_samples (c2s, fhs) =
  Array.map2 Array.append c2s fhs

let geff_observable p (row : float array) =
  let c2 = Array.sub row 0 p.nt and fh = Array.sub row p.nt p.nt in
  Array.init (p.nt - 1) (fun t ->
      (fh.(t + 1) /. c2.(t + 1)) -. (fh.(t) /. c2.(t)))

(* ---- traditional (fixed sink separation) estimator ----
   g_eff^trad(tau; t_sep) for tau in (0, t_sep): contamination from
   both source and sink sides, noise set by e^{rate * t_sep}. *)
let traditional_sample rng p ~t_sep =
  let rate = noise_growth_rate p in
  let ts = float_of_int t_sep in
  (* the 3pt/2pt ratio inherits the 2pt's relative noise at the SINK
     separation: per-sample sigma ~ e^{rate * t_sep} *)
  let sigma = p.noise0 *. 2.0 *. exp (rate *. ts) in
  Array.init (t_sep + 1) (fun tau ->
      let tf = float_of_int tau in
      let contamination =
        p.g01 *. (exp (-.p.de *. tf) +. exp (-.p.de *. (ts -. tf)))
        +. (p.g11 *. exp (-.p.de *. ts))
      in
      p.g00 +. contamination +. (sigma *. Rng.gaussian rng))

let traditional_ensemble rng p ~n ~t_sep =
  Array.init n (fun _ -> traditional_sample rng p ~t_sep)
