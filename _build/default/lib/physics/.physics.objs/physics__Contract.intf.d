lib/physics/contract.mli: Linalg Propagator
