lib/physics/contract.ml: Array Dirac Lattice Linalg List Propagator
