lib/physics/fh.ml: Array Bigarray Contract Dirac Lattice Linalg List Propagator Solver Source
