lib/physics/synth.ml: Array Float Util
