lib/physics/propagator.ml: Array Bigarray Dirac Lattice Linalg List Solver Source
