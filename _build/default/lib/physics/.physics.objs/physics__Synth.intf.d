lib/physics/synth.mli: Util
