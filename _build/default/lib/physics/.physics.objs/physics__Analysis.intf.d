lib/physics/analysis.mli: Util
