lib/physics/meson.mli: Lattice Linalg Propagator
