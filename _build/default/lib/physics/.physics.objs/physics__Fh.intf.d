lib/physics/fh.mli: Lattice Linalg Propagator Solver
