lib/physics/source.ml: Array Bigarray Dirac Lattice Linalg Util
