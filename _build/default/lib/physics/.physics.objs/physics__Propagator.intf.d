lib/physics/propagator.mli: Lattice Linalg Solver
