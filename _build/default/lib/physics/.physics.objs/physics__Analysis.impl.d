lib/physics/analysis.ml: Array Float Util
