lib/physics/source.mli: Lattice Linalg Util
