lib/physics/meson.ml: Array Dirac Float Lattice Linalg Printf Propagator
