(* Sources and the 4D <-> 5D domain-wall boundary maps.

   The physical 4D quark field lives on the walls of the fifth
   dimension: with gamma5 = diag(1,1,-1,-1) (P+ keeps spins 0,1),

     source   B(x,s) = delta_{s,0} P+ eta(x) + delta_{s,L5-1} P- eta(x)
     sink     q(x)   = P- psi(x,0) + P+ psi(x,L5-1)                  *)

module Field = Linalg.Field
module Geometry = Lattice.Geometry

let fps = Dirac.Gamma.floats_per_site

let point geom ~site ~spin ~color =
  let v = Field.create (Geometry.volume geom * fps) in
  Bigarray.Array1.set v ((site * fps) + (((spin * 3) + color) * 2)) 1.;
  v

let wall geom ~t ~spin ~color =
  let v = Field.create (Geometry.volume geom * fps) in
  Geometry.iter_sites geom (fun site ->
      if (Geometry.coords geom site).(3) = t then
        Bigarray.Array1.set v ((site * fps) + (((spin * 3) + color) * 2)) 1.);
  v

(* Gaussian random noise source on one timeslice (stochastic methods). *)
let noise geom rng ~t =
  let v = Field.create (Geometry.volume geom * fps) in
  Geometry.iter_sites geom (fun site ->
      if (Geometry.coords geom site).(3) = t then
        for k = 0 to fps - 1 do
          Bigarray.Array1.set v ((site * fps) + k) (Util.Rng.gaussian rng)
        done);
  v

(* 4D source -> 5D domain-wall source. *)
let to_5d ~l5 geom (eta : Field.t) : Field.t =
  let vol = Geometry.volume geom in
  let b = Field.create (l5 * vol * fps) in
  let last = (l5 - 1) * vol * fps in
  for site = 0 to vol - 1 do
    let o = site * fps in
    (* P+ part (spins 0,1) on slice 0 *)
    for k = 0 to 11 do
      Bigarray.Array1.set b (o + k) (Bigarray.Array1.get eta (o + k))
    done;
    (* P- part (spins 2,3) on slice l5-1 *)
    for k = 12 to 23 do
      Bigarray.Array1.set b (last + o + k) (Bigarray.Array1.get eta (o + k))
    done
  done;
  b

(* 5D solution -> 4D quark field at the walls. *)
let to_4d ~l5 geom (psi : Field.t) : Field.t =
  let vol = Geometry.volume geom in
  let q = Field.create (vol * fps) in
  let last = (l5 - 1) * vol * fps in
  for site = 0 to vol - 1 do
    let o = site * fps in
    (* P- psi(0): spins 2,3 of slice 0 *)
    for k = 12 to 23 do
      Bigarray.Array1.set q (o + k) (Bigarray.Array1.get psi (o + k))
    done;
    (* P+ psi(l5-1): spins 0,1 of the last slice *)
    for k = 0 to 11 do
      Bigarray.Array1.set q (o + k) (Bigarray.Array1.get psi (last + o + k))
    done
  done;
  q

(* Apply a 4x4 spin matrix to a 4D field (sequential/FH sources). *)
let apply_spin_matrix (m : Linalg.Cplx.t array array) (src : Field.t) : Field.t =
  let n_sites = Field.length src / fps in
  let dst = Field.create (Field.length src) in
  for site = 0 to n_sites - 1 do
    let base = site * fps in
    for s = 0 to 3 do
      for c = 0 to 2 do
        let re = ref 0. and im = ref 0. in
        for s' = 0 to 3 do
          let g = m.(s).(s') in
          if g.Linalg.Cplx.re <> 0. || g.Linalg.Cplx.im <> 0. then begin
            let o = base + (((s' * 3) + c) * 2) in
            let xr = Bigarray.Array1.get src o in
            let xi = Bigarray.Array1.get src (o + 1) in
            re := !re +. ((g.Linalg.Cplx.re *. xr) -. (g.Linalg.Cplx.im *. xi));
            im := !im +. ((g.Linalg.Cplx.re *. xi) +. (g.Linalg.Cplx.im *. xr))
          end
        done;
        let o = base + (((s * 3) + c) * 2) in
        Bigarray.Array1.set dst o !re;
        Bigarray.Array1.set dst (o + 1) !im
      done
    done
  done;
  dst
