(** Synthetic correlator ensembles calibrated to the a09m310 analysis
    of Fig 1 — the documented stand-in for the paper's production
    statistics (DESIGN.md substitution table). Implements two-state
    spectral content and Parisi–Lepage noise growth. *)

type params = {
  e0 : float;  (** nucleon mass (lattice units) *)
  m_pi : float;
  de : float;  (** excited-state gap *)
  a0 : float;
  r1 : float;  (** excited/ground amplitude ratio in C(t) *)
  g00 : float;  (** gA *)
  g01 : float;  (** transition contamination *)
  g11 : float;
  noise0 : float;  (** per-sample absolute noise scale at t = 0 *)
  fh_noise : float;  (** extra independent noise on the FH correlator *)
  nt : int;
}

val a09m310 : params
(** Calibrated to a = 0.0871 fm, mπ = 310 MeV, mN = 1.13 GeV,
    gA = 1.2711(126) [Nature 558, 91]. *)

val noise_growth_rate : params -> float
(** E0 − 1.5·mπ: the Parisi–Lepage signal-to-noise decay rate. *)

val c2_mean : params -> float -> float
val ratio_mean : params -> float -> float
val geff_mean : params -> float -> float

val sigma_abs : params -> float -> float
(** Absolute correlator noise ∝ e^{−1.5 mπ t} (three-pion variance). *)

val unit_fluctuation : Util.Rng.t -> params -> float array
(** Correlated unit-variance fluctuation field over t. *)

val sample : Util.Rng.t -> params -> float array * float array
(** One (C, C_FH) draw; the two share gauge fluctuations. *)

val ensemble : Util.Rng.t -> params -> n:int -> float array array * float array array

val paired_samples : float array array * float array array -> float array array
(** Concatenate (C | C_FH) per sample so resampling keeps them
    correlated. *)

val geff_observable : params -> float array -> float array
(** g_eff from a concatenated (C | C_FH) row. *)

val traditional_sample : Util.Rng.t -> params -> t_sep:int -> float array
(** g_eff^trad(τ; t_sep): noise set by the SINK separation. *)

val traditional_ensemble :
  Util.Rng.t -> params -> n:int -> t_sep:int -> float array array
