(* The Feynman-Hellmann method [Bouchard et al., PRD 96 014504] — the
   paper's physics-algorithm contribution. Instead of fixed sink-
   separation three-point functions, solve once more against the
   current-inserted propagator:

     D psi_FH = Gamma q        (Gamma = gamma_z gamma5 for the axial
                                charge; insertion summed over ALL of
                                spacetime by the solve itself)

   and form C_FH(t) by substituting psi_FH for one quark leg in the
   two-point contraction. The ratio R(t) = C_FH(t)/C(t) then grows
   linearly in t with slope g_A, so every source-sink separation is
   measured from a single extra solve — "all the temporal distances
   for the cost of one temporal distance in the traditional method". *)

module Field = Linalg.Field
module Cplx = Linalg.Cplx
module Gamma = Dirac.Gamma

(* A3 = gamma_z gamma5 *)
let axial_matrix = Gamma.mat_mul (Gamma.matrix 2) Gamma.gamma5_matrix

(* FH (current-inserted) propagator: one extra solve per column. *)
let fh_propagator ?precision ?tol (solver : Solver.Dwf_solve.t)
    (prop : Propagator.t) =
  let geom = Solver.Dwf_solve.geom_of solver in
  let l5 = (Solver.Dwf_solve.params_of solver).Dirac.Mobius.l5 in
  Propagator.map prop (fun column ->
      let inserted = Source.apply_spin_matrix axial_matrix column in
      let rhs = Source.to_5d ~l5 geom inserted in
      let x5, _ = Solver.Dwf_solve.solve ?precision ?tol:(tol) solver ~rhs in
      Source.to_4d ~l5 geom x5)

(* d/dlambda of the proton correlator for the isovector axial current
   (u-bar A u - d-bar A d): the FH leg substitutes each u line (two
   Wick slots) minus the d line. Uses the polarized projector. In the
   DeGrand-Rossi Euclidean conventions the gamma_z gamma5 insertion
   makes this correlator purely imaginary; the physical coupling is
   its imaginary part (equivalently, the current carries a factor i). *)
let fh_proton_correlator ~(up : Propagator.t) ~(down : Propagator.t)
    ~(fh_up : Propagator.t) ~(fh_down : Propagator.t) : float array =
  let p = Contract.polarized_projector in
  let c_u1 = Contract.proton_general ~projector:p ~u1:fh_up ~u2:up ~d:down in
  let c_u2 = Contract.proton_general ~projector:p ~u1:up ~u2:fh_up ~d:down in
  let c_d = Contract.proton_general ~projector:p ~u1:up ~u2:up ~d:fh_down in
  Array.init (Array.length c_u1) (fun t ->
      Cplx.im (Cplx.sub (Cplx.add c_u1.(t) c_u2.(t)) c_d.(t)))

(* Effective coupling from the FH ratio:
     R(t) = C_FH(t) / C(t),   g_eff(t) = R(t+1) - R(t). *)
let effective_coupling ~(c2 : float array) ~(c_fh : float array) : float array =
  let nt = Array.length c2 in
  Array.init (nt - 1) (fun t ->
      let r1 = c_fh.(t + 1) /. c2.(t + 1) in
      let r0 = c_fh.(t) /. c2.(t) in
      r1 -. r0)

(* ---- the traditional baseline, implemented for real ----

   The fixed-insertion-time method: restrict the current to one
   timeslice tau and solve

     D psi_tau = Gamma delta_{t,tau} q

   giving the three-point function C3(tau, t_sep) when contracted at
   sink time t_sep. One SOLVE PER INSERTION TIME — this is exactly the
   cost the FH method eliminates ("all the temporal distances for the
   cost of one temporal distance in the traditional method"): by
   linearity, sum_tau psi_tau = psi_FH, which the test suite checks
   exactly. *)

(* Zero a 4D field outside timeslice [tau]. *)
let restrict_timeslice geom ~tau (v : Field.t) : Field.t =
  let out = Field.create (Field.length v) in
  Lattice.Geometry.iter_sites geom (fun site ->
      if (Lattice.Geometry.coords geom site).(3) = tau then
        for k = 0 to Gamma.floats_per_site - 1 do
          Bigarray.Array1.set out ((site * Gamma.floats_per_site) + k)
            (Bigarray.Array1.get v ((site * Gamma.floats_per_site) + k))
        done);
  out

(* Current-inserted propagator with the insertion restricted to
   timeslice [tau]. *)
let sequential_propagator ?precision ?tol (solver : Solver.Dwf_solve.t) ~tau
    (prop : Propagator.t) =
  let geom = Solver.Dwf_solve.geom_of solver in
  let l5 = (Solver.Dwf_solve.params_of solver).Dirac.Mobius.l5 in
  Propagator.map prop (fun column ->
      let inserted = Source.apply_spin_matrix axial_matrix column in
      let restricted = restrict_timeslice geom ~tau inserted in
      let rhs = Source.to_5d ~l5 geom restricted in
      let x5, _ = Solver.Dwf_solve.solve ?precision ?tol solver ~rhs in
      Source.to_4d ~l5 geom x5)

(* Traditional three-point correlator at fixed insertion time [tau]:
   returns C3(tau, t) for all sink times t (read off at t = t_sep).
   Needs one sequential_propagator per tau. *)
let traditional_3pt ~(up : Propagator.t) ~(down : Propagator.t)
    ~(seq_up : Propagator.t) ~(seq_down : Propagator.t) : float array =
  fh_proton_correlator ~up ~down ~fh_up:seq_up ~fh_down:seq_down

(* The traditional ratio g_eff(tau; t_sep) = C3(tau, t_sep) / C2(t_sep)
   given the per-tau three-point functions. *)
let traditional_ratio ~(c2 : float array) ~(c3 : (int * float array) list)
    ~t_sep =
  List.map (fun (tau, c3tau) -> (tau, c3tau.(t_sep) /. c2.(t_sep))) c3
