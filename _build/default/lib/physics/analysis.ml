(* Correlator analysis: effective masses/couplings, resampled errors,
   and the multi-state fits that extract gA (the fit of Fig 1). *)

module Stats = Util.Stats
module Fit = Util.Fit

(* Effective mass m_eff(t) = ln C(t)/C(t+1). *)
let effective_mass (c : float array) : float array =
  Array.init
    (Array.length c - 1)
    (fun t -> if c.(t) > 0. && c.(t + 1) > 0. then log (c.(t) /. c.(t + 1)) else nan)

(* Ensemble = samples x t. Mean and bootstrap error per timeslice. *)
let ensemble_mean (samples : float array array) : float array =
  let n = Array.length samples in
  let nt = Array.length samples.(0) in
  Array.init nt (fun t ->
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. samples.(i).(t)
      done;
      !acc /. float_of_int n)

let ensemble_error (samples : float array array) : float array =
  let nt = Array.length samples.(0) in
  Array.init nt (fun t ->
      Stats.standard_error (Array.map (fun s -> s.(t)) samples))

(* Apply an observable per sample (e.g. g_eff of each bootstrap draw)
   and return central value and bootstrap spread per timeslice. *)
let bootstrap_observable ~rng ~n_boot (samples : float array array)
    (observable : float array -> float array) =
  let n = Array.length samples in
  let mean = observable (ensemble_mean samples) in
  let nt_obs = Array.length mean in
  let draws =
    Array.init n_boot (fun _ ->
        let resample =
          Array.init n (fun _ -> samples.(Util.Rng.int rng n))
        in
        observable (ensemble_mean resample))
  in
  let err =
    Array.init nt_obs (fun t -> Stats.std (Array.map (fun d -> d.(t)) draws))
  in
  (mean, err)

(* Two-state form of the FH effective coupling:
     g_eff(t) = g00 + b01 e^{-dE t} + b11 t e^{-dE t}.
   The fit removes the excited-state contamination visible at small t
   (the grey -> black points of Fig 1). *)
let geff_model p t =
  let g00 = p.(0) and b01 = p.(1) and b11 = p.(2) and de = p.(3) in
  g00 +. (b01 *. exp (-.de *. t)) +. (b11 *. t *. exp (-.de *. t))

type ga_fit = {
  ga : float;
  ga_err : float;
  de : float;
  chi2_dof : float;
  fit : Fit.result;
  t_range : int * int;
}

(* Variable-projection fit: the model is linear in (g00, b01, b11) at
   fixed gap dE, so scan dE over a grid, solve the linear
   least-squares problem at each, and keep the minimum-chi2 profile
   point. Far more stable than a free 4-parameter descent on data
   whose errors grow exponentially with t.

   The grid plays the role of the analysis' Bayesian prior on the gap:
   the lowest nucleon excitation is the N-pi state, dE >~ 2 m_pi ~ 0.27
   in a09m310 units — without that constraint dE -> 0 opens a flat
   direction where slowly-decaying "excited" terms impersonate the
   ground state. *)
let de_grid = Array.init 39 (fun i -> 0.25 +. (0.025 *. float_of_int i))

(* Gaussian prior on the gap (the Bayesian constraint of the real
   analysis): centred a little above 2 m_pi with a generous width. *)
let de_prior_mu = 0.5
let de_prior_sigma = 0.3

let profile_fit ?(prior = true) ~xs ~ys ~sigmas () =
  let best = ref None in
  Array.iter
    (fun de ->
      (* transition-dominated two-state form: g00 + b01 e^{-dE t}.
         (The doubly-excited t e^{-dE t} direction is nearly flat on a
         single correlator and is dropped, as in a transition-dominated
         truncation of the full model.) *)
      let basis = [| (fun _ -> 1.); (fun t -> exp (-.de *. t)) |] in
      match Fit.linear_lsq ~basis ~xs ~ys ~sigmas with
      | r ->
        let penalty =
          if prior then ((de -. de_prior_mu) /. de_prior_sigma) ** 2. else 0.
        in
        let score = r.Fit.chi2 +. penalty in
        (match !best with
        | Some (_, _, s) when s <= score -> ()
        | _ -> best := Some (de, r, score))
      | exception Fit.Singular -> ())
    de_grid;
  match !best with
  | Some (de, r, _) -> (de, r)
  | None -> invalid_arg "Analysis.profile_fit: no stable fit"

(* Fit g_eff(t) over [t_min, t_max] with bootstrap errors on gA. *)
let fit_geff ~rng ~n_boot (samples : float array array)
    ~(observable : float array -> float array) ~t_min ~t_max =
  let mean, err = bootstrap_observable ~rng ~n_boot samples observable in
  let t_max = min t_max (Array.length mean - 1) in
  let xs = Array.init (t_max - t_min + 1) (fun i -> float_of_int (t_min + i)) in
  let ys = Array.init (t_max - t_min + 1) (fun i -> mean.(t_min + i)) in
  let sigmas = Array.init (t_max - t_min + 1) (fun i -> Float.max err.(t_min + i) 1e-12) in
  let de, central = profile_fit ~xs ~ys ~sigmas () in
  (* bootstrap the whole profile fit for the gA error *)
  let n = Array.length samples in
  let draws =
    Array.init n_boot (fun _ ->
        let resample = Array.init n (fun _ -> samples.(Util.Rng.int rng n)) in
        let m = observable (ensemble_mean resample) in
        let ys' = Array.init (t_max - t_min + 1) (fun i -> m.(t_min + i)) in
        let _, r = profile_fit ~xs ~ys:ys' ~sigmas () in
        r.Fit.params.(0))
  in
  {
    ga = central.Fit.params.(0);
    ga_err = Stats.std draws;
    de;
    chi2_dof = central.Fit.chi2 /. float_of_int (max 1 central.Fit.dof);
    fit = central;
    t_range = (t_min, t_max);
  }

(* Plateau (constant) fit for the traditional method's late-time data. *)
let fit_plateau ~(mean : float array) ~(err : float array) ~t_min ~t_max =
  let t_max = min t_max (Array.length mean - 1) in
  let ys = Array.sub mean t_min (t_max - t_min + 1) in
  let sigmas = Array.sub err t_min (t_max - t_min + 1) in
  let r = Fit.constant_fit ~ys ~sigmas in
  (r.Fit.params.(0), r.Fit.errors.(0))
