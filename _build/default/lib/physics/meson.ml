(* General meson two-point functions with momentum projection:

     C_Gamma(t; p) = sum_x e^{-i p.x}
        Tr[ Gamma_snk G(x,0) Gamma_src gamma5 G(x,0)^dag gamma5 ]

   using gamma5-hermiticity for the backward propagator. For
   Gamma_snk = Gamma_src = gamma5 this reduces to the pion correlator
   sum |G|^2 (checked by the test suite against Contract.pion). *)

module Cplx = Linalg.Cplx
module Geometry = Lattice.Geometry
module Gamma = Dirac.Gamma

type channel = {
  name : string;
  snk : Cplx.t array array;
  src : Cplx.t array array;
}

let id4 =
  Array.init 4 (fun r -> Array.init 4 (fun c -> if r = c then Cplx.one else Cplx.zero))

let pion = { name = "pion (g5-g5)"; snk = Gamma.gamma5_matrix; src = Gamma.gamma5_matrix }

let rho mu =
  { name = Printf.sprintf "rho (g%d-g%d)" mu mu; snk = Gamma.matrix mu; src = Gamma.matrix mu }

let a0 = { name = "a0 (1-1)"; snk = id4; src = id4 }

let axial_temporal =
  let g45 = Gamma.mat_mul (Gamma.matrix 3) Gamma.gamma5_matrix in
  { name = "A4 (g4g5-g4g5)"; snk = g45; src = g45 }

let standard_channels = [ pion; rho 0; rho 1; rho 2; a0; axial_temporal ]

(* Writing C = sum Tr[Gamma_snk G Gamma_src gamma5 G^dag gamma5] and
   folding the gamma5s onto the vertex matrices gives the effective
   sink A = gamma5 Gamma_snk and source B = Gamma_src gamma5 with
     C = sum A_{ab} B_{cd} G_{(b i),(c j)} conj G_{(a i),(d j)}. *)
let fold_g5 m = (Gamma.mat_mul Gamma.gamma5_matrix m, Gamma.mat_mul m Gamma.gamma5_matrix)

(* Momentum phase e^{-i p.x} for integer momentum k. *)
let momentum_phase geom ~k site =
  let dims = Geometry.dims geom in
  let c = Geometry.coords geom site in
  let acc = ref 0. in
  for mu = 0 to 2 do
    acc :=
      !acc
      +. (2. *. Float.pi *. float_of_int k.(mu) *. float_of_int c.(mu)
         /. float_of_int dims.(mu))
  done;
  Cplx.exp_i (-. !acc)

(* C(t) for one channel and spatial momentum [k] (default zero). *)
let correlator ?(k = [| 0; 0; 0 |]) (channel : channel) (prop : Propagator.t) :
    float array =
  let geom = prop.Propagator.geom in
  let nt = Geometry.time_extent geom in
  let corr = Array.make nt Cplx.zero in
  let snk_eff, src_eff = (fst (fold_g5 channel.snk), snd (fold_g5 channel.src)) in
  Geometry.iter_sites geom (fun site ->
      let t = (Geometry.coords geom site).(3) in
      let phase = momentum_phase geom ~k site in
      let acc = ref Cplx.zero in
      for a = 0 to 3 do
        for b = 0 to 3 do
          let snk = snk_eff.(a).(b) in
          if Cplx.norm2 snk > 0. then
            for c = 0 to 3 do
              for d = 0 to 3 do
                let sm = src_eff.(c).(d) in
                if Cplx.norm2 sm > 0. then begin
                  (* sum_{i j} G_{b i, c j} conj(G_{a i, d j}) *)
                  let col = ref Cplx.zero in
                  for i = 0 to 2 do
                    for j = 0 to 2 do
                      let g1 =
                        Propagator.get prop ~site ~spin:b ~color:i ~src_spin:c
                          ~src_color:j
                      in
                      let g2 =
                        Propagator.get prop ~site ~spin:a ~color:i ~src_spin:d
                          ~src_color:j
                      in
                      col := Cplx.add !col (Cplx.mul g1 (Cplx.conj g2))
                    done
                  done;
                  acc := Cplx.add !acc (Cplx.mul snk (Cplx.mul sm !col))
                end
              done
            done
        done
      done;
      corr.(t) <- Cplx.add corr.(t) (Cplx.mul phase !acc));
  Array.map Cplx.re corr

(* Lattice dispersion relation for a free-boson-like state:
   E(p) with sinh^2(E/2) = sinh^2(m/2) + sum sin^2(p_mu/2). *)
let lattice_dispersion ~m ~k ~dims =
  let s2 = ref (Float.pow (sinh (m /. 2.)) 2.) in
  for mu = 0 to 2 do
    let p = Float.pi *. float_of_int k.(mu) /. float_of_int dims.(mu) in
    s2 := !s2 +. Float.pow (sin p) 2.
  done;
  2. *. Float.log (sqrt !s2 +. sqrt (1. +. !s2))
