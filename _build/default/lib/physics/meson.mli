(** General meson two-point functions with momentum projection. *)

type channel = {
  name : string;
  snk : Linalg.Cplx.t array array;
  src : Linalg.Cplx.t array array;
}

val pion : channel
val rho : int -> channel
(** [rho mu] with the γ_mu vertex, mu ∈ 0..2. *)

val a0 : channel
val axial_temporal : channel
val standard_channels : channel list

val momentum_phase : Lattice.Geometry.t -> k:int array -> int -> Linalg.Cplx.t
(** e^{−i p·x} for integer spatial momentum [k]. *)

val correlator : ?k:int array -> channel -> Propagator.t -> float array
(** C(t; p) using γ5-hermiticity for the backward propagator. For the
    pion channel this equals [Contract.pion]. *)

val lattice_dispersion : m:float -> k:int array -> dims:int array -> float
(** Free lattice boson dispersion:
    sinh²(E/2) = sinh²(m/2) + Σ sin²(p_mu/2). *)
