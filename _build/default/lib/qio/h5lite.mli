(** HDF5-lite: hierarchical binary container with slash-path groups,
    CRC-checked payloads and 64-bit sizes — the role HDF5 plays in the
    paper's I/O layer, scoped to the workflow's needs. *)

type value =
  | Float_array of float array
  | Int_array of int array
  | Str of string

type t

exception Corrupt of string

val create : unit -> t

val write : t -> path:string -> value -> unit
(** Paths are relative ("group/dataset"); overwriting replaces.
    @raise Invalid_argument on empty or absolute paths. *)

val read : t -> path:string -> value option
val read_exn : t -> path:string -> value
val paths : t -> string list
(** Insertion order. *)

val mem : t -> path:string -> bool
val list_group : t -> group:string -> string list

val crc32 : string -> int32
(** IEEE 802.3 CRC (test vector: crc32 "123456789" = 0xCBF43926). *)

val save : t -> string -> unit

val load : string -> t
(** @raise Corrupt on bad magic, version, or CRC mismatch. *)

val write_field : t -> path:string -> Linalg.Field.t -> unit
val read_field : t -> path:string -> Linalg.Field.t option
val write_correlator : t -> path:string -> float array -> unit
val read_correlator : t -> path:string -> float array option
