lib/qio/h5lite.mli: Linalg
