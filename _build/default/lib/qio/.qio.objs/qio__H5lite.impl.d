lib/qio/h5lite.ml: Array Buffer Char Fun Hashtbl Int32 Int64 Lazy Linalg List String
