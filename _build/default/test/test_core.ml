(* Tests for Core: the end-to-end workflow (tiny lattice) and the
   at-scale campaign simulation. *)

module Workflow = Core.Workflow
module Campaign = Core.Campaign
module PM = Machine.Perf_model

let tiny_spec =
  {
    Workflow.default_spec with
    Workflow.dims = [| 2; 2; 2; 4 |];
    l5 = 4;
    n_configs = 2;
    n_thermalize = 5;
    n_decorrelate = 2;
    tol = 1e-7;
    io_path = Some (Filename.temp_file "workflow" ".nfh5");
  }

let workflow_result = lazy (Workflow.run ~spec:tiny_spec ())

let test_workflow_completes () =
  let r = Lazy.force workflow_result in
  Alcotest.(check int) "2 configs measured" 2 (Array.length r.Workflow.measurements);
  Array.iter
    (fun m ->
      Alcotest.(check bool) "plaquette in (0,1)" true
        (m.Workflow.plaquette > 0. && m.Workflow.plaquette < 1.);
      Alcotest.(check bool) "solves happened" true (m.Workflow.solver_iterations > 0))
    r.Workflow.measurements

let test_workflow_time_budget_shape () =
  (* propagators dominate, like the paper's 96.5 / 3 / 0.5 split *)
  let r = Lazy.force workflow_result in
  let prop, contract, io = Workflow.time_fractions r.Workflow.timing in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1. (prop +. contract +. io);
  Alcotest.(check bool) (Printf.sprintf "propagators dominate (%.3f)" prop) true
    (prop > 0.7);
  Alcotest.(check bool) "io small" true (io < 0.1)

let test_workflow_archive_written () =
  let r = Lazy.force workflow_result in
  match r.Workflow.spec.Workflow.io_path with
  | None -> Alcotest.fail "spec had io_path"
  | Some path ->
    let h5 = Qio.H5lite.load path in
    Alcotest.(check bool) "correlators archived" true
      (List.length (Qio.H5lite.paths h5) >= 6);
    (match Qio.H5lite.read_correlator h5 ~path:"cfg0/pion" with
    | Some c ->
      Alcotest.(check int) "full time extent" 4 (Array.length c);
      Array.iter (fun x -> Alcotest.(check bool) "pion positive" true (x > 0.)) c
    | None -> Alcotest.fail "pion correlator missing");
    Sys.remove path

let test_workflow_pion_mass_positive () =
  let r = Lazy.force workflow_result in
  let m, _ = r.Workflow.pion_mass in
  Alcotest.(check bool) (Printf.sprintf "m_pi_eff %g > 0" m) true (m > 0.)

let campaign_sierra () =
  Campaign.create ~machine:Machine.Spec.sierra
    ~problem:(PM.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20)
    ~group_gpus:16 ~stack:PM.Mvapich2 ()

let test_campaign_group_performance () =
  let c = campaign_sierra () in
  let tf = Campaign.group_tflops c in
  (* 16 V100 at ~1.85 TF/GPU solver rate, derated by app + stack *)
  Alcotest.(check bool) (Printf.sprintf "group %g TF in (15, 25)" tf) true
    (tf > 15. && tf < 25.)

let test_campaign_simulation_utilization () =
  let c = campaign_sierra () in
  let o = Campaign.simulate ~scheduler:`Mpi_jm c ~n_nodes:64 ~n_tasks:128 in
  Alcotest.(check bool) "utilization (0.5, 1]" true
    (o.Campaign.utilization > 0.5 && o.Campaign.utilization <= 1.0 +. 1e-9);
  Alcotest.(check bool) "sustained positive" true (o.Campaign.sustained_pflops > 0.)

let test_campaign_mpi_jm_beats_naive () =
  let c = campaign_sierra () in
  let naive = Campaign.simulate ~scheduler:`Naive c ~n_nodes:64 ~n_tasks:128 in
  let jm = Campaign.simulate ~scheduler:`Mpi_jm c ~n_nodes:64 ~n_tasks:128 in
  Alcotest.(check bool)
    (Printf.sprintf "mpi_jm %.3f > naive %.3f" jm.Campaign.utilization
       naive.Campaign.utilization)
    true
    (jm.Campaign.utilization > naive.Campaign.utilization)

let test_campaign_histogram_samples () =
  let c = campaign_sierra () in
  let samples = Campaign.solver_performance_samples c ~n_tasks:500 in
  Alcotest.(check int) "500 samples" 500 (Array.length samples);
  let mean = Util.Stats.mean samples in
  let per_group = Campaign.group_tflops c in
  Alcotest.(check bool) "mean below nominal (slowest-node gating)" true
    (mean < per_group);
  Alcotest.(check bool) "mean within 20%" true (mean > 0.8 *. per_group);
  let lo, hi = Util.Stats.min_max samples in
  Alcotest.(check bool) "spread exists" true (hi -. lo > 0.01 *. per_group)

let test_inventory_table () =
  let rows = Core.Inventory.rows () in
  Alcotest.(check int) "7 components" 7 (List.length rows);
  List.iter
    (fun r -> Alcotest.(check int) "3 columns" 3 (List.length r))
    rows

let suite =
  [
    Alcotest.test_case "workflow completes" `Slow test_workflow_completes;
    Alcotest.test_case "time budget shape" `Slow test_workflow_time_budget_shape;
    Alcotest.test_case "archive written" `Slow test_workflow_archive_written;
    Alcotest.test_case "pion mass positive" `Slow test_workflow_pion_mass_positive;
    Alcotest.test_case "campaign group perf" `Quick test_campaign_group_performance;
    Alcotest.test_case "campaign utilization" `Quick test_campaign_simulation_utilization;
    Alcotest.test_case "mpi_jm beats naive" `Quick test_campaign_mpi_jm_beats_naive;
    Alcotest.test_case "fig7 histogram samples" `Quick test_campaign_histogram_samples;
    Alcotest.test_case "inventory table" `Quick test_inventory_table;
  ]
