(* Tests for Linalg: complex arithmetic, SU(3), fields, half codec. *)

module Cplx = Linalg.Cplx
module Su3 = Linalg.Su3
module Field = Linalg.Field

let rng () = Util.Rng.create 20_240_601

let check_close ?(eps = 1e-12) msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (|%g - %g| <= %g)" msg a b eps) true
    (abs_float (a -. b) <= eps)

(* ---- Cplx ---- *)

let test_cplx_field_axioms () =
  let a = Cplx.make 1.5 (-0.5) and b = Cplx.make 0.25 2. in
  Alcotest.(check bool) "commutative mul" true
    (Cplx.equal (Cplx.mul a b) (Cplx.mul b a));
  Alcotest.(check bool) "a * a^-1 = 1" true (Cplx.equal (Cplx.mul a (Cplx.inv a)) Cplx.one);
  Alcotest.(check bool) "conj involution" true (Cplx.equal (Cplx.conj (Cplx.conj a)) a);
  check_close "norm2 = a conj a" (Cplx.norm2 a) (Cplx.re (Cplx.mul a (Cplx.conj a)))

let test_cplx_exp_i () =
  let e = Cplx.exp_i (Float.pi /. 2.) in
  Alcotest.(check bool) "e^{i pi/2} = i" true (Cplx.equal ~eps:1e-15 e Cplx.i)

(* ---- Su3 ---- *)

let test_su3_identity () =
  let e = Su3.id () in
  Alcotest.(check bool) "unitary" true (Su3.is_unitary e);
  Alcotest.(check bool) "special" true (Su3.is_special_unitary e);
  check_close "trace 3" 3. (Su3.re_trace e)

let test_su3_random_is_special_unitary () =
  let r = rng () in
  for _ = 1 to 20 do
    let u = Su3.random r in
    Alcotest.(check bool) "unitary" true (Su3.is_unitary ~eps:1e-9 u);
    Alcotest.(check bool) "det 1" true (Su3.is_special_unitary ~eps:1e-9 u)
  done

let test_su3_near_identity_spread () =
  let r = rng () in
  let u = Su3.random_near_identity r ~eps:0.01 in
  Alcotest.(check bool) "close to id" true (Su3.frobenius_dist u (Su3.id ()) < 0.2);
  Alcotest.(check bool) "still SU(3)" true (Su3.is_special_unitary ~eps:1e-9 u)

let test_su3_mul_associative () =
  let r = rng () in
  let a = Su3.random r and b = Su3.random r and c = Su3.random r in
  let lhs = Su3.mul (Su3.mul a b) c and rhs = Su3.mul a (Su3.mul b c) in
  check_close ~eps:1e-12 "assoc" 0. (Su3.frobenius_dist lhs rhs)

let test_su3_adj_antihomomorphism () =
  let r = rng () in
  let a = Su3.random r and b = Su3.random r in
  let lhs = Su3.adj (Su3.mul a b) and rhs = Su3.mul (Su3.adj b) (Su3.adj a) in
  check_close "(ab)^dag = b^dag a^dag" 0. (Su3.frobenius_dist lhs rhs)

let test_su3_reunitarize_projects () =
  let r = rng () in
  let u = Su3.random r in
  (* perturb off the group then project back *)
  let perturbed = Su3.copy u in
  perturbed.(0) <- perturbed.(0) +. 0.05;
  perturbed.(7) <- perturbed.(7) -. 0.03;
  let fixed = Su3.reunitarize perturbed in
  Alcotest.(check bool) "back on SU(3)" true (Su3.is_special_unitary ~eps:1e-10 fixed);
  Alcotest.(check bool) "stayed close" true (Su3.frobenius_dist fixed u < 0.3)

let test_su3_mul_vec_matches_get () =
  let r = rng () in
  let u = Su3.random r in
  let v = Array.init 6 (fun _ -> Util.Rng.gaussian r) in
  let w = Su3.mul_vec u v in
  (* compare against explicit complex arithmetic *)
  for row = 0 to 2 do
    let acc = ref Cplx.zero in
    for k = 0 to 2 do
      acc :=
        Cplx.add !acc
          (Cplx.mul (Su3.get u row k) (Cplx.make v.(2 * k) v.((2 * k) + 1)))
    done;
    check_close "re" (Cplx.re !acc) w.(2 * row);
    check_close "im" (Cplx.im !acc) w.((2 * row) + 1)
  done

let test_su3_adj_mul_vec_inverts () =
  let r = rng () in
  let u = Su3.random r in
  let v = Array.init 6 (fun _ -> Util.Rng.gaussian r) in
  let w = Su3.adj_mul_vec u (Su3.mul_vec u v) in
  Array.iteri (fun i x -> check_close ~eps:1e-10 "U^dag U v = v" v.(i) x) w

let test_su3_embed_extract_su2 () =
  (* embed a normalized quaternion and extract it back *)
  let a0, a1, a2, a3 = (0.5, 0.5, 0.5, 0.5) in
  List.iter
    (fun (p, q) ->
      let m = Su3.embed_su2 ~p ~q (a0, a1, a2, a3) in
      Alcotest.(check bool) "embedded is SU(3)" true (Su3.is_special_unitary m);
      let b0, b1, b2, b3 = Su3.extract_su2 ~p ~q m in
      check_close "a0" a0 b0;
      check_close "a1" a1 b1;
      check_close "a2" a2 b2;
      check_close "a3" a3 b3)
    [ (0, 1); (0, 2); (1, 2) ]

let test_su3_determinant_multiplicative () =
  let r = rng () in
  let a = Su3.random r and b = Su3.random r in
  let da = Su3.determinant a and db = Su3.determinant b in
  let dab = Su3.determinant (Su3.mul a b) in
  Alcotest.(check bool) "det(ab) = det a det b" true
    (Cplx.equal ~eps:1e-10 dab (Cplx.mul da db))

(* ---- Field / BLAS1 ---- *)

let test_field_axpy () =
  let x = Field.of_array [| 1.; 2.; 3. |] in
  let y = Field.of_array [| 10.; 20.; 30. |] in
  Field.axpy 2. x y;
  Alcotest.(check (array (float 1e-12))) "y + 2x" [| 12.; 24.; 36. |] (Field.to_array y)

let test_field_xpay () =
  let x = Field.of_array [| 1.; 2. |] in
  let y = Field.of_array [| 10.; 20. |] in
  Field.xpay x 0.5 y;
  Alcotest.(check (array (float 1e-12))) "x + a y" [| 6.; 12. |] (Field.to_array y)

let test_field_norms_and_dots () =
  let r = rng () in
  let n = 2048 in
  let x = Field.create n and y = Field.create n in
  Field.gaussian r x;
  Field.gaussian r y;
  check_close ~eps:1e-9 "norm2 = dot(x,x)" (Field.norm2 x) (Field.dot_re x x);
  let cxy = Field.cdot x y and cyx = Field.cdot y x in
  check_close ~eps:1e-9 "<x|y> = conj <y|x> (re)" (Cplx.re cxy) (Cplx.re cyx);
  check_close ~eps:1e-9 "<x|y> = conj <y|x> (im)" (Cplx.im cxy) (-.Cplx.im cyx);
  check_close ~eps:1e-9 "re cdot = dot_re" (Cplx.re cxy) (Field.dot_re x y)

let test_field_caxpy_matches_complex () =
  let x = Field.of_array [| 1.; 0.; 0.; 1. |] in
  (* x = [1, i] *)
  let y = Field.create 4 in
  Field.caxpy (0., 1.) x y;
  (* y = i * [1, i] = [i, -1] *)
  Alcotest.(check (array (float 1e-12))) "i*x" [| 0.; 1.; -1.; 0. |] (Field.to_array y)

let test_field_cauchy_schwarz () =
  let r = rng () in
  let x = Field.create 240 and y = Field.create 240 in
  Field.gaussian r x;
  Field.gaussian r y;
  let lhs = Cplx.abs (Field.cdot x y) in
  let rhs = Field.norm x *. Field.norm y in
  Alcotest.(check bool) "|<x,y>| <= |x||y|" true (lhs <= rhs *. (1. +. 1e-12))

let test_half_roundtrip_accuracy () =
  let r = rng () in
  let n = 24 * 64 in
  let x = Field.create n in
  Field.gaussian r x;
  let y = Field.Half.round_trip x ~block:24 in
  (* per-block error bounded by norm/2/32767 plus float32 norm rounding *)
  for b = 0 to (n / 24) - 1 do
    let norm = ref 0. in
    for i = 0 to 23 do
      let v = abs_float (Bigarray.Array1.get x ((b * 24) + i)) in
      if v > !norm then norm := v
    done;
    for i = 0 to 23 do
      let d =
        abs_float
          (Bigarray.Array1.get x ((b * 24) + i)
          -. Bigarray.Array1.get y ((b * 24) + i))
      in
      Alcotest.(check bool) "within quantum" true
        (d <= (!norm /. Field.Half.max_q /. 2.) +. (!norm *. 2e-7))
    done
  done

let test_half_preserves_zero_and_scale () =
  let x = Field.create 48 in
  let y = Field.Half.round_trip x ~block:24 in
  Alcotest.(check (float 0.)) "zero stays zero" 0. (Field.norm2 y);
  (* the per-block max element is exactly representable *)
  let z = Field.of_array (Array.init 24 (fun i -> if i = 5 then 7.25 else 0.)) in
  let w = Field.Half.round_trip z ~block:24 in
  Alcotest.(check (float 1e-6)) "max element survives" 7.25 (Bigarray.Array1.get w 5)

let test_half_relative_error_small () =
  let r = rng () in
  let x = Field.create (24 * 32) in
  Field.gaussian r x;
  let y = Field.Half.round_trip x ~block:24 in
  let d = Field.create (Field.length x) in
  Field.sub x y d;
  let rel = sqrt (Field.norm2 d /. Field.norm2 x) in
  Alcotest.(check bool) (Printf.sprintf "rel err %g < 2e-4" rel) true (rel < 2e-4)

(* ---- qcheck properties ---- *)

let su3_arb =
  QCheck.make
    ~print:(fun u -> Format.asprintf "%a" Su3.pp u)
    (QCheck.Gen.map
       (fun seed -> Su3.random (Util.Rng.create seed))
       QCheck.Gen.int)

let prop_su3_product_closed =
  QCheck.Test.make ~name:"su3 product stays in SU(3)" ~count:50
    (QCheck.pair su3_arb su3_arb) (fun (a, b) ->
      Su3.is_special_unitary ~eps:1e-8 (Su3.mul a b))

let prop_su3_unitarity =
  QCheck.Test.make ~name:"su3 U U^dag = 1" ~count:50 su3_arb (fun u ->
      Su3.frobenius_dist (Su3.mul u (Su3.adj u)) (Su3.id ()) < 1e-9)

let prop_su3_trace_cyclic =
  QCheck.Test.make ~name:"tr(ab) = tr(ba)" ~count:50 (QCheck.pair su3_arb su3_arb)
    (fun (a, b) ->
      Cplx.abs (Cplx.sub (Su3.trace (Su3.mul a b)) (Su3.trace (Su3.mul b a)))
      < 1e-10)

let suite =
  [
    Alcotest.test_case "cplx field axioms" `Quick test_cplx_field_axioms;
    Alcotest.test_case "cplx exp_i" `Quick test_cplx_exp_i;
    Alcotest.test_case "su3 identity" `Quick test_su3_identity;
    Alcotest.test_case "su3 random in group" `Quick test_su3_random_is_special_unitary;
    Alcotest.test_case "su3 near identity" `Quick test_su3_near_identity_spread;
    Alcotest.test_case "su3 associativity" `Quick test_su3_mul_associative;
    Alcotest.test_case "su3 adjoint reverses" `Quick test_su3_adj_antihomomorphism;
    Alcotest.test_case "su3 reunitarize" `Quick test_su3_reunitarize_projects;
    Alcotest.test_case "su3 mul_vec" `Quick test_su3_mul_vec_matches_get;
    Alcotest.test_case "su3 adj_mul_vec" `Quick test_su3_adj_mul_vec_inverts;
    Alcotest.test_case "su3 su2 embed/extract" `Quick test_su3_embed_extract_su2;
    Alcotest.test_case "su3 determinant" `Quick test_su3_determinant_multiplicative;
    Alcotest.test_case "field axpy" `Quick test_field_axpy;
    Alcotest.test_case "field xpay" `Quick test_field_xpay;
    Alcotest.test_case "field norms/dots" `Quick test_field_norms_and_dots;
    Alcotest.test_case "field caxpy" `Quick test_field_caxpy_matches_complex;
    Alcotest.test_case "field cauchy-schwarz" `Quick test_field_cauchy_schwarz;
    Alcotest.test_case "half codec accuracy" `Quick test_half_roundtrip_accuracy;
    Alcotest.test_case "half zero/scale" `Quick test_half_preserves_zero_and_scale;
    Alcotest.test_case "half relative error" `Quick test_half_relative_error_small;
    QCheck_alcotest.to_alcotest prop_su3_product_closed;
    QCheck_alcotest.to_alcotest prop_su3_unitarity;
    QCheck_alcotest.to_alcotest prop_su3_trace_cyclic;
  ]
