(* Tests for Physics: sources, contractions, the Feynman-Hellmann
   machinery (free-field axial charge), and the calibrated synthetic
   ensemble that backs Fig 1. *)

module Geometry = Lattice.Geometry
module Gauge = Lattice.Gauge
module Field = Linalg.Field
module Cplx = Linalg.Cplx
module Src = Physics.Source
module Prop = Physics.Propagator
module Contract = Physics.Contract
module Fh = Physics.Fh
module Synth = Physics.Synth
module Analysis = Physics.Analysis

let rng () = Util.Rng.create 1234

let test_point_source_normalized () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let s = Src.point geom ~site:3 ~spin:2 ~color:1 in
  Alcotest.(check (float 0.)) "unit norm" 1. (Field.norm2 s);
  Alcotest.(check (float 0.)) "right slot" 1.
    (Bigarray.Array1.get s ((3 * 24) + (((2 * 3) + 1) * 2)))

let test_wall_source_support () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let s = Src.wall geom ~t:2 ~spin:0 ~color:0 in
  Alcotest.(check (float 0.)) "one per spatial site" 8. (Field.norm2 s)

let test_5d_4d_maps_inverse_on_walls () =
  (* to_4d . to_5d restores the 4D field (the walls carry disjoint
     chiralities). *)
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let r = rng () in
  let eta = Field.create (Geometry.volume geom * 24) in
  Field.gaussian r eta;
  let b5 = Src.to_5d ~l5:6 geom eta in
  (* walls only: slice 0 holds P+ eta, slice 5 holds P- eta; to_4d
     reads the OPPOSITE projections, so compose with swapped walls *)
  let q = Src.to_4d ~l5:6 geom b5 in
  (* q = P- B(0) + P+ B(l5-1) = P- P+ eta + P+ P- eta = 0 *)
  Alcotest.(check (float 0.)) "chiral walls disjoint" 0. (Field.norm2 q);
  (* and the 5D source carries exactly the full norm of eta *)
  Alcotest.(check (float 1e-12)) "norm preserved" (Field.norm2 eta) (Field.norm2 b5)

let test_apply_spin_matrix_matches_gamma () =
  let geom = Geometry.create [| 2; 2; 2; 2 |] in
  let r = rng () in
  let v = Field.create (Geometry.volume geom * 24) in
  Field.gaussian r v;
  for mu = 0 to 3 do
    let via_matrix = Src.apply_spin_matrix (Dirac.Gamma.matrix mu) v in
    let via_action = Field.create (Field.length v) in
    for site = 0 to Geometry.volume geom - 1 do
      Dirac.Gamma.apply_site Dirac.Gamma.gammas.(mu) v (site * 24) via_action (site * 24)
    done;
    Alcotest.(check (float 1e-12)) "matrix = action" 0.
      (Field.max_abs_diff via_matrix via_action)
  done

(* Shared tiny free-field setup for the solve-based tests (24 + 12
   solves: keep it as small as possible). *)
let free_setup =
  lazy
    (let geom = Geometry.create [| 4; 4; 4; 8 |] in
     let gauge = Gauge.unit geom in
     let params = Dirac.Mobius.mobius ~l5:6 ~m5:1.3 ~alpha:1.5 ~mass:0.2 in
     let solver = Solver.Dwf_solve.create params geom (Gauge.with_antiperiodic_time gauge) in
     let prop = Prop.point_propagator ~tol:1e-10 solver ~src_site:0 in
     let fh = Fh.fh_propagator ~tol:1e-10 solver prop in
     (geom, prop, fh))

let test_pion_correlator_positive_decaying () =
  let _, prop, _ = Lazy.force free_setup in
  let c = Contract.pion prop in
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.)) c;
  (* decays away from the source up to the midpoint *)
  let nt = Array.length c in
  for t = 1 to (nt / 2) - 1 do
    Alcotest.(check bool) (Printf.sprintf "decay at %d" t) true (c.(t) > c.(t + 1))
  done;
  (* approximately time-reflection symmetric *)
  for t = 1 to (nt / 2) - 1 do
    let a = c.(t) and b = c.(nt - t) in
    Alcotest.(check bool)
      (Printf.sprintf "symmetry at %d (%g vs %g)" t a b)
      true
      (abs_float (a -. b) /. (a +. b) < 0.05)
  done

let test_pion_effective_mass_sane () =
  let _, prop, _ = Lazy.force free_setup in
  let m_eff = Analysis.effective_mass (Contract.pion prop) in
  (* free pion of two mass-0.2 quarks: m_pi ~< 2 * single-quark energy;
     just require a sane positive value in the early plateau *)
  Alcotest.(check bool) (Printf.sprintf "m_eff(1) = %g" m_eff.(1)) true
    (m_eff.(1) > 0.2 && m_eff.(1) < 3.)

let test_proton_correlator_positive () =
  let _, prop, _ = Lazy.force free_setup in
  let c = Contract.proton ~up:prop ~down:prop () in
  for t = 0 to (Array.length c / 2) - 1 do
    Alcotest.(check bool) (Printf.sprintf "C(%d) > 0" t) true (c.(t) > 0.)
  done

let test_proton_heavier_than_pion () =
  let _, prop, _ = Lazy.force free_setup in
  let m_pi = (Analysis.effective_mass (Contract.pion prop)).(1) in
  let m_n =
    (Analysis.effective_mass (Contract.proton ~up:prop ~down:prop ())).(1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "m_N %g > m_pi %g" m_n m_pi)
    true (m_n > m_pi)

let test_free_field_axial_coupling () =
  (* The full FH chain on the free field: g_eff must form an early
     plateau in (0.8, 5/3) — below the nonrelativistic quark-model
     value 5/3, reduced by the lower Dirac components. *)
  let _, prop, fh = Lazy.force free_setup in
  let c2 =
    Contract.proton ~projector:Contract.polarized_projector ~up:prop ~down:prop ()
  in
  let cfh = Fh.fh_proton_correlator ~up:prop ~down:prop ~fh_up:fh ~fh_down:fh in
  let geff = Fh.effective_coupling ~c2 ~c_fh:cfh in
  let plateau = (geff.(1) +. geff.(2)) /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "free gA plateau %g in (0.8, 1.67)" plateau)
    true
    (plateau > 0.8 && plateau < 5. /. 3.)

(* ---- sequential (traditional) insertion vs FH ---- *)

let tiny_solver =
  lazy
    (let geom = Geometry.create [| 2; 2; 2; 4 |] in
     let gauge = Gauge.warm geom (Util.Rng.create 808) ~eps:0.4 in
     let params = Dirac.Mobius.mobius ~l5:4 ~m5:1.8 ~alpha:1.5 ~mass:0.15 in
     let solver = Solver.Dwf_solve.create params geom (Gauge.with_antiperiodic_time gauge) in
     (geom, solver))

let test_sequential_sums_to_fh () =
  (* sum over insertion times of the timeslice-restricted solves equals
     the single FH solve (exact linearity) — the paper's "all the
     temporal distances for the cost of one" *)
  let geom, solver = Lazy.force tiny_solver in
  let prop = Prop.point_propagator ~tol:1e-11 solver ~src_site:0 in
  let fh = Fh.fh_propagator ~tol:1e-11 solver prop in
  let nt = Geometry.time_extent geom in
  let seqs =
    List.init nt (fun tau -> Fh.sequential_propagator ~tol:1e-11 solver ~tau prop)
  in
  (* compare column by column: sum_tau seq_tau = fh *)
  for col = 0 to 11 do
    let acc = Field.create (Field.length fh.Prop.columns.(col)) in
    List.iter (fun sq -> Field.axpy 1. sq.Prop.columns.(col) acc) seqs;
    let rel =
      Field.max_abs_diff acc fh.Prop.columns.(col)
      /. Float.max 1e-12 (sqrt (Field.norm2 fh.Prop.columns.(col)))
    in
    Alcotest.(check bool) (Printf.sprintf "col %d linearity (rel %g)" col rel)
      true (rel < 1e-6)
  done

let test_sequential_cost_ratio () =
  (* the economics: nt sequential solves vs 1 FH solve per column *)
  let geom, _ = Lazy.force tiny_solver in
  let nt = Geometry.time_extent geom in
  Alcotest.(check bool) "traditional needs nt solves per column" true (nt > 1)

(* ---- residual mass ---- *)

let test_residual_mass_positive_and_decreasing () =
  (* m_res measures chiral symmetry breaking at finite L5 and must
     shrink as L5 grows (free field, modest M5) *)
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let gauge = Gauge.unit geom in
  let mres l5 =
    let params = Dirac.Mobius.shamir ~l5 ~m5:1.2 ~mass:0.05 in
    let solver = Solver.Dwf_solve.create params geom (Gauge.with_antiperiodic_time gauge) in
    let prop = Prop.point_propagator ~tol:1e-11 ~keep_midpoint:true solver ~src_site:0 in
    Prop.residual_mass prop
  in
  let m4 = mres 4 and m8 = mres 8 in
  Alcotest.(check bool) (Printf.sprintf "m_res(L5=4) = %g > 0" m4) true (m4 > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "m_res decreases with L5: %g -> %g" m4 m8)
    true
    (m8 < m4)

let test_residual_mass_requires_midpoint () =
  let _, solver = Lazy.force tiny_solver in
  let prop = Prop.point_propagator ~tol:1e-9 solver ~src_site:0 in
  Alcotest.check_raises "needs midpoint"
    (Invalid_argument "Propagator.residual_mass: need keep_midpoint:true")
    (fun () -> ignore (Prop.residual_mass prop))

(* ---- meson channels ---- *)

let test_meson_pion_matches_contract () =
  let _, prop, _ = Lazy.force free_setup in
  let via_meson = Physics.Meson.correlator Physics.Meson.pion prop in
  let via_contract = Contract.pion prop in
  Array.iteri
    (fun t a ->
      let b = via_contract.(t) in
      Alcotest.(check bool)
        (Printf.sprintf "t=%d: %g vs %g" t a b)
        true
        (abs_float (a -. b) <= 1e-9 *. (1. +. abs_float b)))
    via_meson

let test_meson_channels_degenerate_when_free () =
  (* for non-interacting quarks the pion and rho are both two free
     quarks: their masses agree up to lattice spin artifacts *)
  let _, prop, _ = Lazy.force free_setup in
  let m_pi = (Analysis.effective_mass (Physics.Meson.correlator Physics.Meson.pion prop)).(1) in
  let m_rho =
    (Analysis.effective_mass (Physics.Meson.correlator (Physics.Meson.rho 2) prop)).(1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "free m_rho %g ~ m_pi %g" m_rho m_pi)
    true
    (abs_float (m_rho -. m_pi) /. m_pi < 0.2);
  (* both correlators positive at small t *)
  let c_rho = Physics.Meson.correlator (Physics.Meson.rho 0) prop in
  for t = 0 to 3 do
    Alcotest.(check bool) "rho positive" true (c_rho.(t) > 0.)
  done

let test_meson_momentum_raises_energy () =
  let _, prop, _ = Lazy.force free_setup in
  let e0 =
    (Analysis.effective_mass (Physics.Meson.correlator ~k:[| 0; 0; 0 |] Physics.Meson.pion prop)).(1)
  in
  let e1 =
    (Analysis.effective_mass (Physics.Meson.correlator ~k:[| 1; 0; 0 |] Physics.Meson.pion prop)).(1)
  in
  Alcotest.(check bool) (Printf.sprintf "E(p) %g > E(0) %g" e1 e0) true (e1 > e0)

let test_meson_dispersion_shape () =
  (* the lattice dispersion helper is monotone in |k| and reduces to m
     at k = 0 *)
  let dims = [| 4; 4; 4; 8 |] in
  let m = 0.8 in
  let e0 = Physics.Meson.lattice_dispersion ~m ~k:[| 0; 0; 0 |] ~dims in
  let e1 = Physics.Meson.lattice_dispersion ~m ~k:[| 1; 0; 0 |] ~dims in
  let e2 = Physics.Meson.lattice_dispersion ~m ~k:[| 1; 1; 0 |] ~dims in
  Alcotest.(check (float 1e-9)) "E(0) = m" m e0;
  Alcotest.(check bool) "monotone" true (e1 > e0 && e2 > e1)

(* ---- synthetic ensemble (Fig 1 engine) ---- *)

let test_synth_mean_matches_model () =
  let p = Synth.a09m310 in
  let r = rng () in
  let c2s, _ = Synth.ensemble r p ~n:4000 in
  let mean = Analysis.ensemble_mean c2s in
  for t = 0 to 5 do
    let expect = Synth.c2_mean p (float_of_int t) in
    Alcotest.(check bool)
      (Printf.sprintf "C(%d) %g ~ %g" t mean.(t) expect)
      true
      (abs_float (mean.(t) -. expect) /. expect < 0.05)
  done

let test_synth_noise_grows_exponentially () =
  let p = Synth.a09m310 in
  let r = rng () in
  let c2s, _ = Synth.ensemble r p ~n:2000 in
  let err = Analysis.ensemble_error c2s in
  let mean = Analysis.ensemble_mean c2s in
  (* relative error grows with t (Parisi-Lepage) *)
  let rel t = err.(t) /. abs_float mean.(t) in
  Alcotest.(check bool)
    (Printf.sprintf "S/N degrades: rel(2)=%g rel(10)=%g" (rel 2) (rel 10))
    true
    (rel 10 > 4. *. rel 2)

let test_synth_geff_noiseless_matches_analytic () =
  let p = { Synth.a09m310 with Synth.noise0 = 0. } in
  let r = rng () in
  let c2, cfh = Synth.sample r p in
  let row = Array.append c2 cfh in
  let geff = Synth.geff_observable p row in
  for t = 0 to p.Synth.nt - 2 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "geff(%d)" t)
      (Synth.geff_mean p (float_of_int t))
      geff.(t)
  done

let test_synth_geff_approaches_ga () =
  let p = Synth.a09m310 in
  (* late-time limit of the noiseless effective coupling is g00 *)
  let late = Synth.geff_mean p 14. in
  Alcotest.(check bool)
    (Printf.sprintf "geff(14) = %g ~ gA" late)
    true
    (abs_float (late -. p.Synth.g00) < 0.01);
  (* and small-t contamination pulls it below *)
  Alcotest.(check bool) "contamination at t=1" true
    (Synth.geff_mean p 1. < p.Synth.g00 -. 0.02)

let test_fh_fit_recovers_ga_at_one_percent () =
  (* the headline statistical claim of Fig 1: FH with ~784 samples
     gives gA at ~1% *)
  let p = Synth.a09m310 in
  let r = rng () in
  let ens = Synth.ensemble r p ~n:784 in
  let samples = Synth.paired_samples ens in
  let fit =
    Analysis.fit_geff ~rng:r ~n_boot:100 samples
      ~observable:(Synth.geff_observable p) ~t_min:2 ~t_max:10
  in
  Alcotest.(check bool)
    (Printf.sprintf "gA = %g +- %g vs %g" fit.Analysis.ga fit.Analysis.ga_err
       p.Synth.g00)
    true
    (abs_float (fit.Analysis.ga -. p.Synth.g00) < 4. *. fit.Analysis.ga_err);
  Alcotest.(check bool)
    (Printf.sprintf "precision %.2f%% in (0.3, 3)" (100. *. fit.Analysis.ga_err /. fit.Analysis.ga))
    true
    (fit.Analysis.ga_err /. fit.Analysis.ga > 0.003
    && fit.Analysis.ga_err /. fit.Analysis.ga < 0.03)

let test_traditional_noisier_than_fh () =
  (* traditional estimator at t_sep = 12 with 10x the samples still
     has larger point errors than FH at small t *)
  let p = Synth.a09m310 in
  let r = rng () in
  let fh_ens = Synth.paired_samples (Synth.ensemble r p ~n:784) in
  let _, fh_err =
    Analysis.bootstrap_observable ~rng:r ~n_boot:100 fh_ens
      (Synth.geff_observable p)
  in
  let trad = Synth.traditional_ensemble r p ~n:7840 ~t_sep:12 in
  let trad_err = Analysis.ensemble_error trad in
  (* compare FH error where the fit reads the signal (t=4) with the
     traditional midpoint (tau = 6 of t_sep 12) *)
  Alcotest.(check bool)
    (Printf.sprintf "trad %g >> fh %g" trad_err.(6) fh_err.(4))
    true
    (trad_err.(6) > 3. *. fh_err.(4))

let test_traditional_bias_shrinks_with_tsep () =
  (* the traditional estimator's midpoint approaches gA as the sink
     separation grows (contamination ~ e^{-dE tsep/2}) — the reason
     traditional analyses are pushed to large, noisy separations *)
  let p = Synth.a09m310 in
  let r = rng () in
  let midpoint t_sep =
    let trad = Synth.traditional_ensemble r p ~n:40_000 ~t_sep in
    (Analysis.ensemble_mean trad).(t_sep / 2)
  in
  let dev6 = abs_float (midpoint 6 -. p.Synth.g00) in
  let dev12 = abs_float (midpoint 12 -. p.Synth.g00) in
  Alcotest.(check bool)
    (Printf.sprintf "bias shrinks: %.3f (tsep 6) -> %.3f (tsep 12)" dev6 dev12)
    true
    (dev12 < dev6);
  Alcotest.(check bool) "tsep 12 within 0.3" true (dev12 < 0.3)

let test_plateau_fit () =
  let mean = [| 1.0; 1.2; 1.25; 1.27; 1.268; 1.272; 1.27 |] in
  let err = Array.make 7 0.01 in
  let v, e = Analysis.fit_plateau ~mean ~err ~t_min:3 ~t_max:6 in
  Alcotest.(check bool) "plateau near 1.27" true (abs_float (v -. 1.27) < 0.01);
  Alcotest.(check bool) "error ~ 0.005" true (e > 0.003 && e < 0.008)

let suite =
  [
    Alcotest.test_case "point source" `Quick test_point_source_normalized;
    Alcotest.test_case "wall source" `Quick test_wall_source_support;
    Alcotest.test_case "5d/4d wall maps" `Quick test_5d_4d_maps_inverse_on_walls;
    Alcotest.test_case "spin matrix apply" `Quick test_apply_spin_matrix_matches_gamma;
    Alcotest.test_case "pion positive/decaying" `Slow test_pion_correlator_positive_decaying;
    Alcotest.test_case "pion effective mass" `Slow test_pion_effective_mass_sane;
    Alcotest.test_case "proton positive" `Slow test_proton_correlator_positive;
    Alcotest.test_case "proton heavier than pion" `Slow test_proton_heavier_than_pion;
    Alcotest.test_case "free-field axial coupling" `Slow test_free_field_axial_coupling;
    Alcotest.test_case "sequential sums to FH" `Slow test_sequential_sums_to_fh;
    Alcotest.test_case "sequential cost" `Quick test_sequential_cost_ratio;
    Alcotest.test_case "residual mass vs L5" `Slow test_residual_mass_positive_and_decreasing;
    Alcotest.test_case "residual mass guard" `Slow test_residual_mass_requires_midpoint;
    Alcotest.test_case "meson pion = contract" `Slow test_meson_pion_matches_contract;
    Alcotest.test_case "meson channels free-degenerate" `Slow test_meson_channels_degenerate_when_free;
    Alcotest.test_case "meson momentum" `Slow test_meson_momentum_raises_energy;
    Alcotest.test_case "lattice dispersion" `Quick test_meson_dispersion_shape;
    Alcotest.test_case "synth mean" `Quick test_synth_mean_matches_model;
    Alcotest.test_case "synth noise growth" `Quick test_synth_noise_grows_exponentially;
    Alcotest.test_case "synth geff noiseless" `Quick test_synth_geff_noiseless_matches_analytic;
    Alcotest.test_case "synth geff limit" `Quick test_synth_geff_approaches_ga;
    Alcotest.test_case "FH 1% precision" `Slow test_fh_fit_recovers_ga_at_one_percent;
    Alcotest.test_case "traditional noisier" `Quick test_traditional_noisier_than_fh;
    Alcotest.test_case "traditional bias vs tsep" `Quick test_traditional_bias_shrinks_with_tsep;
    Alcotest.test_case "plateau fit" `Quick test_plateau_fit;
  ]
