(* Tests for Dirac: gamma algebra, Wilson stencil (free-field
   dispersion, gamma5-hermiticity, checkerboard consistency), Mobius
   domain-wall operator (adjoint identity, M5 inverse, chiral limits). *)

module Geometry = Lattice.Geometry
module Gauge = Lattice.Gauge
module Field = Linalg.Field
module Cplx = Linalg.Cplx
module Gamma = Dirac.Gamma
module Wilson = Dirac.Wilson
module Mobius = Dirac.Mobius

let rng () = Util.Rng.create 31_337

let check_close ?(eps = 1e-10) msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (|%g - %g| <= %g)" msg a b eps) true
    (abs_float (a -. b) <= eps)

(* ---- Gamma algebra ---- *)

let test_gamma_anticommutators () =
  Alcotest.(check bool) "{g_mu, g_nu} = 2 delta" true (Gamma.anticommutator_check ())

let test_gamma5_diagonal () =
  Alcotest.(check (array (float 0.))) "g5 = diag(1,1,-1,-1)"
    [| 1.; 1.; -1.; -1. |] Gamma.gamma5_diag

let test_gamma5_squares_to_one () =
  let m = Gamma.mat_mul Gamma.gamma5_matrix Gamma.gamma5_matrix in
  for s = 0 to 3 do
    for s' = 0 to 3 do
      let want = if s = s' then Cplx.one else Cplx.zero in
      Alcotest.(check bool) "g5^2 = 1" true (Cplx.equal m.(s).(s') want)
    done
  done

let test_gamma_hermitian () =
  (* Euclidean gammas are hermitian: g = g^dag. *)
  for mu = 0 to 3 do
    let m = Gamma.matrix mu in
    for s = 0 to 3 do
      for s' = 0 to 3 do
        Alcotest.(check bool) "hermitian" true
          (Cplx.equal m.(s).(s') (Cplx.conj m.(s').(s)))
      done
    done
  done

let test_gamma5_anticommutes () =
  for mu = 0 to 3 do
    let gm = Gamma.matrix mu in
    let a = Gamma.mat_mul Gamma.gamma5_matrix gm in
    let b = Gamma.mat_mul gm Gamma.gamma5_matrix in
    for s = 0 to 3 do
      for s' = 0 to 3 do
        Alcotest.(check bool) "g5 g_mu = -g_mu g5" true
          (Cplx.equal a.(s).(s') (Cplx.neg b.(s).(s')))
      done
    done
  done

let test_apply_site_matches_matrix () =
  let r = rng () in
  for mu = 0 to 3 do
    let src = Field.create 24 and dst = Field.create 24 in
    Field.gaussian r src;
    Gamma.apply_site Gamma.gammas.(mu) src 0 dst 0;
    (* explicit matrix multiply on (spin, color) components *)
    let m = Gamma.matrix mu in
    for s = 0 to 3 do
      for c = 0 to 2 do
        let acc = ref Cplx.zero in
        for s' = 0 to 3 do
          let o = ((s' * 3) + c) * 2 in
          acc :=
            Cplx.add !acc
              (Cplx.mul m.(s).(s')
                 (Cplx.make (Bigarray.Array1.get src o) (Bigarray.Array1.get src (o + 1))))
        done;
        let o = ((s * 3) + c) * 2 in
        check_close "re" (Cplx.re !acc) (Bigarray.Array1.get dst o);
        check_close "im" (Cplx.im !acc) (Bigarray.Array1.get dst (o + 1))
      done
    done
  done

let test_apply_gamma5_involution () =
  let r = rng () in
  let src = Field.create (24 * 8) in
  Field.gaussian r src;
  let once = Field.create (Field.length src) in
  Gamma.apply_gamma5 src once;
  Gamma.apply_gamma5 once once;
  (* in place *)
  Alcotest.(check (float 0.)) "g5 g5 = id" 0. (Field.max_abs_diff src once)

(* ---- Wilson ---- *)

let unit_setup dims =
  let geom = Geometry.create dims in
  let gauge = Gauge.unit geom in
  (geom, Wilson.of_geometry geom gauge)

let test_wilson_free_dispersion () =
  (* On the unit gauge field a plane wave is an eigenvector:
     M e^{ipx} chi = e^{ipx} [(4+m) - sum cos p + i sum g_mu sin p] chi *)
  let dims = [| 4; 4; 2; 4 |] in
  let geom, w = unit_setup dims in
  let r = rng () in
  let mass = 0.1 in
  let chi = Array.init 24 (fun _ -> Util.Rng.gaussian r) in
  let k = [| 1; 3; 0; 2 |] in
  let p = Array.init 4 (fun mu -> 2. *. Float.pi *. float_of_int k.(mu) /. float_of_int dims.(mu)) in
  let vol = Geometry.volume geom in
  let src = Field.create (vol * 24) in
  Geometry.iter_sites geom (fun site ->
      let c = Geometry.coords geom site in
      let phase = ref 0. in
      for mu = 0 to 3 do
        phase := !phase +. (p.(mu) *. float_of_int c.(mu))
      done;
      let e = Cplx.exp_i !phase in
      for comp = 0 to 11 do
        let re = chi.(comp * 2) and im = chi.((comp * 2) + 1) in
        Bigarray.Array1.set src ((site * 24) + (comp * 2))
          ((e.Cplx.re *. re) -. (e.Cplx.im *. im));
        Bigarray.Array1.set src ((site * 24) + (comp * 2) + 1)
          ((e.Cplx.re *. im) +. (e.Cplx.im *. re))
      done);
  let dst = Field.create (vol * 24) in
  Wilson.apply w ~mass ~src ~dst;
  (* expected: same plane wave with spinor chi' = M(p) chi *)
  let diag = 4. +. mass -. Array.fold_left (fun a pm -> a +. cos pm) 0. p in
  let chi' = Array.make 24 0. in
  for comp = 0 to 11 do
    chi'.(comp * 2) <- diag *. chi.(comp * 2);
    chi'.((comp * 2) + 1) <- diag *. chi.((comp * 2) + 1)
  done;
  for mu = 0 to 3 do
    let m = Gamma.matrix mu in
    let s_mu = sin p.(mu) in
    for s = 0 to 3 do
      for s' = 0 to 3 do
        let g = m.(s).(s') in
        if Cplx.abs g > 0. then
          for c = 0 to 2 do
            let o = ((s * 3) + c) * 2 and o' = ((s' * 3) + c) * 2 in
            (* add i * s_mu * g * chi_{s'} *)
            let coeff = Cplx.mul (Cplx.make 0. s_mu) g in
            chi'.(o) <-
              chi'.(o)
              +. ((coeff.Cplx.re *. chi.(o')) -. (coeff.Cplx.im *. chi.(o' + 1)));
            chi'.(o + 1) <-
              chi'.(o + 1)
              +. ((coeff.Cplx.re *. chi.(o' + 1)) +. (coeff.Cplx.im *. chi.(o')))
          done
      done
    done
  done;
  (* compare site 0 (phase = 1) and a generic site *)
  List.iter
    (fun site ->
      let c = Geometry.coords geom site in
      let phase = ref 0. in
      for mu = 0 to 3 do
        phase := !phase +. (p.(mu) *. float_of_int c.(mu))
      done;
      let e = Cplx.exp_i !phase in
      for comp = 0 to 11 do
        let want_re = (e.Cplx.re *. chi'.(comp * 2)) -. (e.Cplx.im *. chi'.((comp * 2) + 1)) in
        let want_im = (e.Cplx.re *. chi'.((comp * 2) + 1)) +. (e.Cplx.im *. chi'.(comp * 2)) in
        check_close ~eps:1e-9 "plane wave re" want_re
          (Bigarray.Array1.get dst ((site * 24) + (comp * 2)));
        check_close ~eps:1e-9 "plane wave im" want_im
          (Bigarray.Array1.get dst ((site * 24) + (comp * 2) + 1))
      done)
    [ 0; Geometry.site geom [| 1; 2; 1; 3 |] ]

let random_gauge_setup dims =
  let geom = Geometry.create dims in
  let gauge = Gauge.random geom (rng ()) in
  (geom, gauge)

let test_wilson_gamma5_hermiticity () =
  let geom, gauge = random_gauge_setup [| 4; 2; 2; 4 |] in
  let w = Wilson.of_geometry geom gauge in
  let r = rng () in
  let n = Geometry.volume geom * 24 in
  let u = Field.create n and v = Field.create n in
  Field.gaussian r u;
  Field.gaussian r v;
  let dv = Field.create n and du = Field.create n in
  Wilson.apply w ~mass:0.2 ~src:v ~dst:dv;
  Wilson.apply_dagger w ~mass:0.2 ~src:u ~dst:du;
  let lhs = Field.cdot u dv and rhs = Field.cdot du v in
  check_close ~eps:1e-8 "re <u, Dv> = <D^dag u, v>" (Cplx.re lhs) (Cplx.re rhs);
  check_close ~eps:1e-8 "im <u, Dv> = <D^dag u, v>" (Cplx.im lhs) (Cplx.im rhs)

let test_wilson_checkerboard_consistency () =
  (* The full hopping restricted to one parity equals the
     checkerboarded kernel applied to the opposite-parity field. *)
  let geom, gauge = random_gauge_setup [| 4; 4; 2; 2 |] in
  let w_full = Wilson.of_geometry geom gauge in
  let w_e = Wilson.of_checkerboard geom gauge ~parity:0 in
  let w_o = Wilson.of_checkerboard geom gauge ~parity:1 in
  let r = rng () in
  let vol = Geometry.volume geom and half = Geometry.half_volume geom in
  let src = Field.create (vol * 24) in
  Field.gaussian r src;
  let dst_full = Field.create (vol * 24) in
  Wilson.hop w_full ~src ~dst:dst_full;
  (* split source by parity *)
  let src_e = Field.create (half * 24) and src_o = Field.create (half * 24) in
  Geometry.iter_sites geom (fun site ->
      let p = Geometry.parity geom site in
      let i = Geometry.eo_index geom site in
      let dst = if p = 0 then src_e else src_o in
      for k = 0 to 23 do
        Bigarray.Array1.set dst ((i * 24) + k) (Bigarray.Array1.get src ((site * 24) + k))
      done);
  let dst_e = Field.create (half * 24) and dst_o = Field.create (half * 24) in
  Wilson.hop w_e ~src:src_o ~dst:dst_e;
  Wilson.hop w_o ~src:src_e ~dst:dst_o;
  Geometry.iter_sites geom (fun site ->
      let p = Geometry.parity geom site in
      let i = Geometry.eo_index geom site in
      let cb = if p = 0 then dst_e else dst_o in
      for k = 0 to 23 do
        check_close ~eps:1e-12 "cb = full"
          (Bigarray.Array1.get dst_full ((site * 24) + k))
          (Bigarray.Array1.get cb ((i * 24) + k))
      done)

let test_wilson_hop_sites_subset () =
  let geom, gauge = random_gauge_setup [| 2; 2; 2; 4 |] in
  let w = Wilson.of_geometry geom gauge in
  let r = rng () in
  let n = Geometry.volume geom * 24 in
  let src = Field.create n in
  Field.gaussian r src;
  let full = Field.create n and partial = Field.create n in
  Wilson.hop w ~src ~dst:full;
  let sites = Array.init (Geometry.volume geom / 2) (fun i -> 2 * i) in
  Wilson.hop_sites w ~sites ~src ~dst:partial ();
  Array.iter
    (fun s ->
      for k = 0 to 23 do
        check_close ~eps:0. "subset matches"
          (Bigarray.Array1.get full ((s * 24) + k))
          (Bigarray.Array1.get partial ((s * 24) + k))
      done)
    sites

(* ---- Mobius ---- *)

let mobius_setup ?(dims = [| 2; 2; 2; 4 |]) ?(l5 = 4) ?(mass = 0.1) ?(alpha = 1.5) () =
  let geom = Geometry.create dims in
  let gauge = Gauge.warm geom (rng ()) ~eps:0.4 in
  let gauge = Gauge.with_antiperiodic_time gauge in
  let p = Mobius.mobius ~l5 ~m5:1.8 ~alpha ~mass in
  (geom, gauge, p)

let test_mobius_shamir_limit () =
  let p = Mobius.mobius ~l5:8 ~m5:1.8 ~alpha:1. ~mass:0.1 in
  let s = Mobius.shamir ~l5:8 ~m5:1.8 ~mass:0.1 in
  check_close "b5" s.Mobius.b5 p.Mobius.b5;
  check_close "c5" s.Mobius.c5 p.Mobius.c5

let test_m5inv_inverts_m5 () =
  let _, _, p = mobius_setup () in
  let n4 = 16 in
  let r = rng () in
  let src = Field.create (p.Mobius.l5 * n4 * 24) in
  Field.gaussian r src;
  let mid = Field.create (Field.length src) in
  let back = Field.create (Field.length src) in
  Mobius.apply_m5 p ~n4 ~src ~dst:mid;
  Mobius.apply_m5inv p ~n4 ~src:mid ~dst:back;
  Alcotest.(check bool) "m5inv . m5 = id" true (Field.max_abs_diff src back < 1e-10);
  (* and the other order *)
  Mobius.apply_m5inv p ~n4 ~src ~dst:mid;
  Mobius.apply_m5 p ~n4 ~src:mid ~dst:back;
  Alcotest.(check bool) "m5 . m5inv = id" true (Field.max_abs_diff src back < 1e-10)

let test_g5r5_involution () =
  let r = rng () in
  let l5 = 6 and n4 = 8 in
  let src = Field.create (l5 * n4 * 24) in
  Field.gaussian r src;
  let once = Field.create (Field.length src) in
  let twice = Field.create (Field.length src) in
  Mobius.apply_g5r5 ~l5 ~n4 ~src ~dst:once;
  Mobius.apply_g5r5 ~l5 ~n4 ~src:once ~dst:twice;
  Alcotest.(check (float 0.)) "(g5 r5)^2 = id" 0. (Field.max_abs_diff src twice)

let test_mobius_adjoint_identity () =
  let geom, gauge, p = mobius_setup () in
  let d = Mobius.of_geometry p geom gauge in
  let r = rng () in
  let n = Mobius.field_length d in
  let u = Field.create n and v = Field.create n in
  Field.gaussian r u;
  Field.gaussian r v;
  let dv = Field.create n and du = Field.create n in
  Mobius.apply d ~src:v ~dst:dv;
  Mobius.apply_dagger d ~src:u ~dst:du;
  let lhs = Field.cdot u dv and rhs = Field.cdot du v in
  check_close ~eps:1e-8 "re adjoint" (Cplx.re lhs) (Cplx.re rhs);
  check_close ~eps:1e-8 "im adjoint" (Cplx.im lhs) (Cplx.im rhs)

let test_mobius_schur_adjoint_identity () =
  let geom, gauge, p = mobius_setup () in
  let eo = Mobius.of_geometry_eo p geom gauge in
  let r = rng () in
  let n = Mobius.eo_field_length eo in
  let u = Field.create n and v = Field.create n in
  Field.gaussian r u;
  Field.gaussian r v;
  let sv = Field.create n and su = Field.create n in
  Mobius.apply_schur eo ~src:v ~dst:sv;
  Mobius.apply_schur_dagger eo ~src:u ~dst:su;
  let lhs = Field.cdot u sv and rhs = Field.cdot su v in
  check_close ~eps:1e-8 "re schur adjoint" (Cplx.re lhs) (Cplx.re rhs);
  check_close ~eps:1e-8 "im schur adjoint" (Cplx.im lhs) (Cplx.im rhs)

let test_mobius_normal_positive () =
  let geom, gauge, p = mobius_setup () in
  let d = Mobius.of_geometry p geom gauge in
  let r = rng () in
  let n = Mobius.field_length d in
  for _ = 1 to 3 do
    let v = Field.create n in
    Field.gaussian r v;
    let ndv = Field.create n in
    Mobius.apply_normal d ~src:v ~dst:ndv;
    let q = Field.dot_re v ndv in
    Alcotest.(check bool) "D^dag D positive" true (q > 0.)
  done

let test_mobius_eo_full_consistency () =
  (* Schur complement applied directly must agree with eliminating the
     even sites from the full operator: for x supported on odd sites
     with x_e = -M5inv Hop_eo x_o, (D x)_o = S x_o. *)
  let geom, gauge, p = mobius_setup () in
  let d = Mobius.of_geometry p geom gauge in
  let eo = Mobius.of_geometry_eo p geom gauge in
  let r = rng () in
  let x_odd = Mobius.create_eo_field eo in
  Field.gaussian r x_odd;
  (* x_e = -M5inv Hop_eo x_o *)
  let t = Mobius.create_eo_field eo in
  Mobius.hop_eo eo ~to_parity:0 ~src:x_odd ~dst:t;
  let x_even = Mobius.create_eo_field eo in
  Mobius.apply_m5inv p ~n4:(Geometry.half_volume geom) ~src:t ~dst:x_even;
  Field.scale (-1.) x_even;
  let full = Mobius.merge_eo geom ~l5:p.Mobius.l5 ~even:x_even ~odd:x_odd in
  let dx = Field.create (Mobius.field_length d) in
  Mobius.apply d ~src:full ~dst:dx;
  let dx_even, dx_odd = Mobius.split_eo geom ~l5:p.Mobius.l5 dx in
  (* odd part = Schur, even part = 0 *)
  let sx = Mobius.create_eo_field eo in
  Mobius.apply_schur eo ~src:x_odd ~dst:sx;
  Alcotest.(check bool) "(Dx)_odd = S x_odd" true (Field.max_abs_diff dx_odd sx < 1e-9);
  Alcotest.(check bool) "(Dx)_even = 0" true (sqrt (Field.norm2 dx_even) < 1e-9)

let test_split_merge_roundtrip () =
  let geom = Geometry.create [| 2; 2; 2; 4 |] in
  let l5 = 3 in
  let r = rng () in
  let full = Field.create (l5 * Geometry.volume geom * 24) in
  Field.gaussian r full;
  let even, odd = Mobius.split_eo geom ~l5 full in
  let back = Mobius.merge_eo geom ~l5 ~even ~odd in
  Alcotest.(check (float 0.)) "roundtrip" 0. (Field.max_abs_diff full back)

(* qcheck: adjoint identity for random Mobius parameter sets *)
let prop_mobius_adjoint_random_params =
  let gen =
    QCheck.Gen.(
      quad (int_range 2 6) (float_range 0.5 1.9) (float_range 1. 2.5)
        (float_range 0.01 0.5))
  in
  QCheck.Test.make ~count:5
    ~name:"mobius adjoint identity for random (l5, m5, alpha, mass)"
    (QCheck.make gen)
    (fun (l5, m5, alpha, mass) ->
      let geom = Geometry.create [| 2; 2; 2; 2 |] in
      let gauge = Gauge.warm geom (Util.Rng.create (l5 * 13)) ~eps:0.5 in
      let p = Mobius.mobius ~l5 ~m5 ~alpha ~mass in
      let d = Mobius.of_geometry p geom gauge in
      let r = Util.Rng.create 5 in
      let n = Mobius.field_length d in
      let u = Field.create n and v = Field.create n in
      Field.gaussian r u;
      Field.gaussian r v;
      let dv = Field.create n and du = Field.create n in
      Mobius.apply d ~src:v ~dst:dv;
      Mobius.apply_dagger d ~src:u ~dst:du;
      let lhs = Field.cdot u dv and rhs = Field.cdot du v in
      Cplx.abs (Cplx.sub lhs rhs) < 1e-6 *. (1. +. Cplx.abs lhs))

let suite =
  [
    Alcotest.test_case "gamma anticommutators" `Quick test_gamma_anticommutators;
    Alcotest.test_case "gamma5 diagonal" `Quick test_gamma5_diagonal;
    Alcotest.test_case "gamma5 squares to 1" `Quick test_gamma5_squares_to_one;
    Alcotest.test_case "gammas hermitian" `Quick test_gamma_hermitian;
    Alcotest.test_case "gamma5 anticommutes" `Quick test_gamma5_anticommutes;
    Alcotest.test_case "apply_site = matrix" `Quick test_apply_site_matches_matrix;
    Alcotest.test_case "gamma5 involution" `Quick test_apply_gamma5_involution;
    Alcotest.test_case "wilson free dispersion" `Quick test_wilson_free_dispersion;
    Alcotest.test_case "wilson gamma5-hermiticity" `Quick test_wilson_gamma5_hermiticity;
    Alcotest.test_case "wilson checkerboard" `Quick test_wilson_checkerboard_consistency;
    Alcotest.test_case "wilson site subset" `Quick test_wilson_hop_sites_subset;
    Alcotest.test_case "mobius shamir limit" `Quick test_mobius_shamir_limit;
    Alcotest.test_case "m5inv inverts m5" `Quick test_m5inv_inverts_m5;
    Alcotest.test_case "g5r5 involution" `Quick test_g5r5_involution;
    Alcotest.test_case "mobius adjoint" `Quick test_mobius_adjoint_identity;
    Alcotest.test_case "schur adjoint" `Quick test_mobius_schur_adjoint_identity;
    Alcotest.test_case "normal op positive" `Quick test_mobius_normal_positive;
    Alcotest.test_case "eo/full consistency" `Quick test_mobius_eo_full_consistency;
    Alcotest.test_case "split/merge roundtrip" `Quick test_split_merge_roundtrip;
    QCheck_alcotest.to_alcotest prop_mobius_adjoint_random_params;
  ]
