test/test_core.ml: Alcotest Array Core Filename Lazy List Machine Printf Qio Sys Util
