test/test_properties.ml: Array Bytes Char Filename Float Gen Jobman Lattice Linalg List QCheck QCheck_alcotest Qio String Sys Util
