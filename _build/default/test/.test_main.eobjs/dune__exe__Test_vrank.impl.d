test/test_vrank.ml: Alcotest Array Bigarray Dirac Lattice Linalg List Printf Solver String Util Vrank
