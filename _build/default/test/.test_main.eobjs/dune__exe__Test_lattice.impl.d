test/test_lattice.ml: Alcotest Array Float Lattice Linalg List Printf Util
