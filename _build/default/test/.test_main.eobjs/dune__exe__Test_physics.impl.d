test/test_physics.ml: Alcotest Array Bigarray Dirac Float Lattice Lazy Linalg List Physics Printf Solver Util
