test/test_dirac.ml: Alcotest Array Bigarray Dirac Float Lattice Linalg List Printf QCheck QCheck_alcotest Util
