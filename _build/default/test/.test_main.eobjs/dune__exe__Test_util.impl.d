test/test_util.ml: Alcotest Array Ascii Fit Float List Printf Rng Stats String Util
