test/test_machine.ml: Alcotest Array List Machine Option Printf
