test/test_autotune.ml: Alcotest Array Autotune Dirac Filename Fun Lattice Linalg List Machine Sys Util
