test/test_qio.ml: Alcotest Array Bytes Char Filename Linalg List Qio Sys Util
