test/test_linalg.ml: Alcotest Array Bigarray Float Format Linalg List Printf QCheck QCheck_alcotest Util
