test/test_solver.ml: Alcotest Array Bigarray Dirac Lattice Linalg Option Printf Solver Util
