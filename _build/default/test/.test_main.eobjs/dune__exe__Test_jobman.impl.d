test/test_jobman.ml: Alcotest Jobman List Printf Util
