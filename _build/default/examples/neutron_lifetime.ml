(* The paper's motivating physics: from gA to the neutron lifetime.

     dune exec examples/neutron_lifetime.exe

   Runs the Fig-1 analysis on the a09m310-calibrated ensemble, converts
   the extracted gA into the Standard-Model neutron lifetime
   tau_n = 5172 s / (1 + 3 gA^2) [Czarnecki-Marciano-Sirlin], and puts
   it next to the two discrepant experimental measurements that
   motivate the whole program. *)

module Synth = Physics.Synth
module Analysis = Physics.Analysis

let () =
  let p = Synth.a09m310 in
  let rng = Util.Rng.create 1_875_000 in
  print_endline "extracting gA from the Feynman-Hellmann ensemble (784 samples) ...";
  let ens = Synth.ensemble rng p ~n:784 in
  let samples = Synth.paired_samples ens in
  let fit =
    Analysis.fit_geff ~rng ~n_boot:300 samples
      ~observable:(Synth.geff_observable p) ~t_min:1 ~t_max:12
  in
  let ga = fit.Analysis.ga and dga = fit.Analysis.ga_err in
  Printf.printf "  gA = %.4f +- %.4f  (paper: 1.271(13), PDG: 1.2754(13))\n\n" ga dga;
  (* tau_n = 5172 / (1 + 3 gA^2); error propagated through d tau/d gA *)
  let tau g = 5172.0 /. (1. +. (3. *. g *. g)) in
  let t = tau ga in
  let dtau = abs_float ((tau (ga +. 1e-6) -. t) /. 1e-6) *. dga in
  Printf.printf "Standard-Model prediction from this gA:\n";
  Printf.printf "  tau_n = 5172.0 / (1 + 3 gA^2) = %.1f +- %.1f s\n\n" t dtau;
  print_endline "experimental situation (the anomaly the paper aims at):";
  Printf.printf "  trapped ultracold neutrons:  879.4 +- 0.6 s\n";
  Printf.printf "  neutron beams:               888   +- 2   s\n";
  Printf.printf "  discrepancy:                 ~8.6 s  (~4 sigma)\n\n";
  let dtau_dga = abs_float ((tau (ga +. 1e-6) -. t) /. 1e-6) in
  let dga_needed = 8.6 /. dtau_dga in
  Printf.printf
    "to discriminate: the 8.6 s lifetime difference corresponds to a gA\n\
     shift of %.4f — a %.2f%% measurement. This run reached %.2f%%; the\n\
     paper reached 1%% and charts the path to 0.2%% on the CORAL machines,\n\
     which is what Figs. 3-7 are about.\n"
    dga_needed
    (100. *. dga_needed /. ga)
    (100. *. dga /. ga);
  (* bonus: where tau_n matters — the primordial helium fraction *)
  print_endline "(a longer-lived neutron leaves more neutrons at freeze-out:\n roughly one extra second of lifetime shifts the primordial 4He\n mass fraction by ~2e-4 — the BBN lever arm of Sec. III.)"
