examples/ga_measurement.mli:
