examples/neutron_lifetime.mli:
