examples/scaling_study.ml: Arg Array Autotune Cmd Cmdliner Core Format List Machine Option Printf String Term Util
