examples/neutron_lifetime.ml: Physics Printf Util
