examples/quickstart.ml: Array Dirac Lattice Physics Printf Solver Util
