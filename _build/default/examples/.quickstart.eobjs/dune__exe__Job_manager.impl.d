examples/job_manager.ml: Jobman List Printf Util
