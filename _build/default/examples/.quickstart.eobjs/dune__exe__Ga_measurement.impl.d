examples/ga_measurement.ml: Array Dirac Lattice Physics Printf Solver Util
