examples/job_manager.mli:
