examples/quickstart.mli:
