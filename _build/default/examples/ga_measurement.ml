(* The axial-charge measurement, end to end — the paper's science.

     dune exec examples/ga_measurement.exe

   Part 1 runs the REAL Feynman-Hellmann algorithm on a small lattice:
   point propagator, FH (current-inserted) propagator, proton
   contractions, effective coupling g_eff(t). On the free field this
   machinery reproduces the relativistic quark-model value (below the
   nonrelativistic 5/3).

   Part 2 runs the production-scale STATISTICS on the a09m310-
   calibrated synthetic ensemble: the 1%-precision gA extraction of
   Fig 1, and what the traditional method would need for the same
   answer. *)

let part1 () =
  print_endline "== Part 1: real FH measurement (free field, 4^3 x 16) ==";
  let geom = Lattice.Geometry.create [| 4; 4; 4; 16 |] in
  let gauge = Lattice.Gauge.unit geom in
  let params = Dirac.Mobius.mobius ~l5:8 ~m5:1.3 ~alpha:1.5 ~mass:0.2 in
  let solver =
    Solver.Dwf_solve.create params geom (Lattice.Gauge.with_antiperiodic_time gauge)
  in
  print_endline "solving 12 propagator + 12 Feynman-Hellmann columns ...";
  let prop = Physics.Propagator.point_propagator ~tol:1e-10 solver ~src_site:0 in
  let fh = Physics.Fh.fh_propagator ~tol:1e-10 solver prop in
  let c2 =
    Physics.Contract.proton ~projector:Physics.Contract.polarized_projector
      ~up:prop ~down:prop ()
  in
  let cfh = Physics.Fh.fh_proton_correlator ~up:prop ~down:prop ~fh_up:fh ~fh_down:fh in
  let geff = Physics.Fh.effective_coupling ~c2 ~c_fh:cfh in
  print_endline "effective axial coupling g_eff(t) of three free quarks:";
  Array.iteri
    (fun t g -> if t <= 6 then Printf.printf "  t=%d  %+.4f\n" t g)
    geff;
  Printf.printf
    "early plateau %.3f: below the nonrelativistic quark-model 5/3 = %.3f\n\
     (lower Dirac components reduce it), rising toward 5/3 as the quark\n\
     mass grows — run with a heavier mass to see it.\n\n"
    ((geff.(1) +. geff.(2)) /. 2.)
    (5. /. 3.)

let part2 () =
  print_endline "== Part 2: production statistics (a09m310 synthetic ensemble) ==";
  let p = Physics.Synth.a09m310 in
  let rng = Util.Rng.create 7 in
  let ens = Physics.Synth.ensemble rng p ~n:784 in
  let samples = Physics.Synth.paired_samples ens in
  let fit =
    Physics.Analysis.fit_geff ~rng ~n_boot:200 samples
      ~observable:(Physics.Synth.geff_observable p) ~t_min:1 ~t_max:12
  in
  Printf.printf "Feynman-Hellmann, 784 samples:  gA = %.4f +- %.4f  (%.2f%%)\n"
    fit.Physics.Analysis.ga fit.Physics.Analysis.ga_err
    (100. *. fit.Physics.Analysis.ga_err /. fit.Physics.Analysis.ga);
  let trad = Physics.Synth.traditional_ensemble rng p ~n:7840 ~t_sep:12 in
  let mean = Physics.Analysis.ensemble_mean trad in
  let err = Physics.Analysis.ensemble_error trad in
  let v, e = Physics.Analysis.fit_plateau ~mean ~err ~t_min:5 ~t_max:7 in
  Printf.printf "traditional (t_sep = 12), 7840 samples: gA = %.4f +- %.4f  (%.2f%%)\n"
    v e (100. *. e /. v);
  Printf.printf
    "-> the FH algorithm reaches ~1%% from an order of magnitude fewer\n\
     samples, by reading the signal at small t where S/N is exponentially\n\
     better. Neutron lifetime from this gA: tau_n = 5172/(1+3 gA^2) = %.1f s\n"
    (5172. /. (1. +. (3. *. fit.Physics.Analysis.ga *. fit.Physics.Analysis.ga)))

let () =
  part1 ();
  part2 ()
