(* Quickstart: the shortest path through the public API.

     dune exec examples/quickstart.exe

   Generates a small quenched SU(3) ensemble, solves the Mobius
   domain-wall Dirac equation on one configuration with the red-black
   mixed-precision CG, and measures the pion correlator. *)

module Geometry = Lattice.Geometry
module Gauge = Lattice.Gauge

let () =
  print_endline "neutron_fall quickstart: 4^3 x 8 lattice";
  let rng = Util.Rng.create 42 in

  (* 1. a lattice and a Monte Carlo gauge configuration *)
  let geom = Geometry.create [| 4; 4; 4; 8 |] in
  let schedule = Lattice.Heatbath.default_schedule ~beta:5.7 in
  let configs, _plaq_history = Lattice.Heatbath.generate rng schedule geom ~n_configs:1 in
  let gauge = configs.(0) in
  Printf.printf "plaquette after thermalization: %.4f\n" (Gauge.average_plaquette gauge);

  (* 2. a Mobius domain-wall solver on that configuration *)
  let params = Dirac.Mobius.mobius ~l5:6 ~m5:1.8 ~alpha:1.5 ~mass:0.1 in
  let solver =
    Solver.Dwf_solve.create params geom (Gauge.with_antiperiodic_time gauge)
  in

  (* 3. one propagator solve (12 spin-color columns), mixed precision *)
  let prop =
    Physics.Propagator.point_propagator
      ~precision:(Solver.Dwf_solve.Mixed Solver.Mixed.default_config)
      ~tol:1e-8 solver ~src_site:0
  in
  Printf.printf "12 columns solved: %d CG iterations, %s\n"
    (Physics.Propagator.total_iterations prop)
    (Util.Ascii.si_float (Physics.Propagator.total_flops prop) ^ "Flop");

  (* 4. a physics measurement: the pion two-point function *)
  let pion = Physics.Contract.pion prop in
  print_endline "pion correlator C(t):";
  Array.iteri (fun t c -> Printf.printf "  t=%d  %.6e\n" t c) pion;
  let m_eff = Physics.Analysis.effective_mass pion in
  Printf.printf "effective mass at t=1: %.3f (lattice units)\n" m_eff.(1)
