(* Tables I-III of the paper. *)

module Ascii = Util.Ascii

let table1 () =
  Ascii.banner "Table I: performance attributes";
  Ascii.print_table
    ~header:[ "Attribute"; "Paper"; "This reproduction" ]
    [
      [ "Category of achievement"; "time to solution"; "time to solution (simulated machines)" ];
      [ "method"; "explicit"; "explicit" ];
      [ "reporting"; "whole application including I/O"; "whole application including I/O" ];
      [ "precision"; "mixed-precision"; "mixed-precision (double/half fixed-point)" ];
      [ "system scale"; "full-scale system"; "full-scale system (discrete-event model)" ];
      [ "measurement method"; "FLOP count"; "FLOP count (same conventions)" ];
    ]

let table2 () =
  Ascii.banner "Table II: systems used in this study";
  Ascii.print_table ~header:Machine.Spec.table_ii_header (Machine.Spec.table_ii ())

let table3 () =
  Ascii.banner "Table III: application software -> this repository";
  Ascii.print_table ~header:Core.Inventory.header (Core.Inventory.rows ())
