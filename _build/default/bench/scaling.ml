(* Figures 3-7: scaling studies on the modeled CORAL machines, plus the
   machine-to-machine speedup claim of Sec. VII. *)

module Spec = Machine.Spec
module PM = Machine.Perf_model
module Ascii = Util.Ascii

let p48 = PM.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20
let p96 = PM.problem ~dims:[| 96; 96; 96; 144 |] ~l5:20
let p64 = PM.problem ~dims:[| 64; 64; 64; 96 |] ~l5:12

let fig3_counts = [ 4; 8; 16; 32; 64; 96; 128; 144 ]

let fig3 () =
  Ascii.banner "Figure 3: strong scaling of the CG solver, 48^3 x 64 (x L5=20)";
  let machines = [ Spec.titan; Spec.ray; Spec.sierra ] in
  let results =
    List.map
      (fun m ->
        ( m,
          List.filter_map
            (fun n -> PM.best_policy m p48 ~n_gpus:n)
            fig3_counts ))
      machines
  in
  Ascii.print_table
    ~header:
      [ "GPUs"; "Titan TF"; "Ray TF"; "Sierra TF"; "Titan %"; "Ray %";
        "Sierra %"; "Titan GB/s"; "Ray GB/s"; "Sierra GB/s" ]
    (List.map
       (fun n ->
         let cell m f =
           match PM.best_policy m p48 ~n_gpus:n with
           | Some r -> f r
           | None -> "-"
         in
         [
           string_of_int n;
           cell Spec.titan (fun r -> Printf.sprintf "%.1f" r.PM.tflops_total);
           cell Spec.ray (fun r -> Printf.sprintf "%.1f" r.PM.tflops_total);
           cell Spec.sierra (fun r -> Printf.sprintf "%.1f" r.PM.tflops_total);
           cell Spec.titan (fun r -> Printf.sprintf "%.1f" r.PM.percent_peak);
           cell Spec.ray (fun r -> Printf.sprintf "%.1f" r.PM.percent_peak);
           cell Spec.sierra (fun r -> Printf.sprintf "%.1f" r.PM.percent_peak);
           cell Spec.titan (fun r -> Printf.sprintf "%.0f" r.PM.bw_per_gpu_gbs);
           cell Spec.ray (fun r -> Printf.sprintf "%.0f" r.PM.bw_per_gpu_gbs);
           cell Spec.sierra (fun r -> Printf.sprintf "%.0f" r.PM.bw_per_gpu_gbs);
         ])
       fig3_counts);
  let series f glyphs =
    List.map2
      (fun (m, rs) glyph ->
        Ascii.series ~glyph m.Spec.name
          (Array.of_list (List.map (fun r -> (float_of_int r.PM.n_gpus, f r)) rs)))
      results glyphs
  in
  print_endline "(a) aggregate TFlops:";
  Ascii.print_plot ~x_label:"GPUs" ~y_label:"TFlop/s" ~height:14
    (series (fun r -> r.PM.tflops_total) [ 't'; 'r'; 's' ]);
  print_endline "(b) percent of peak:";
  Ascii.print_plot ~x_label:"GPUs" ~y_label:"% of peak" ~height:12
    (series (fun r -> r.PM.percent_peak) [ 't'; 'r'; 's' ]);
  print_endline "(c) bandwidth per GPU:";
  Ascii.print_plot ~x_label:"GPUs" ~y_label:"GB/s per GPU" ~height:12
    (series (fun r -> r.PM.bw_per_gpu_gbs) [ 't'; 'r'; 's' ]);
  Ascii.print_table
    ~header:[ "Check"; "Paper"; "Here" ]
    [
      [ "Titan BW/GPU at peak eff."; "139 GB/s";
        (match PM.best_policy Spec.titan p48 ~n_gpus:16 with
        | Some r -> Printf.sprintf "%.0f GB/s" r.PM.bw_per_gpu_gbs
        | None -> "-") ];
      [ "Ray BW/GPU at peak eff."; "516 GB/s";
        (match PM.best_policy Spec.ray p48 ~n_gpus:16 with
        | Some r -> Printf.sprintf "%.0f GB/s" r.PM.bw_per_gpu_gbs
        | None -> "-") ];
      [ "Sierra BW/GPU at peak eff."; "975 GB/s";
        (match PM.best_policy Spec.sierra p48 ~n_gpus:16 with
        | Some r -> Printf.sprintf "%.0f GB/s" r.PM.bw_per_gpu_gbs
        | None -> "-") ];
      [ "Sierra % peak at low count"; "~20%";
        (match PM.best_policy Spec.sierra p48 ~n_gpus:16 with
        | Some r -> Printf.sprintf "%.1f%%" r.PM.percent_peak
        | None -> "-") ];
      [ "efficiency ordering"; "Titan < Ray < Sierra"; "Titan < Ray < Sierra" ];
    ]

let fig4_counts = [ 512; 768; 1024; 1536; 2048; 3072; 4096; 6144; 8192; 10368 ]

let fig4 () =
  Ascii.banner "Figure 4: strong scaling on Summit, 96^3 x 144 (x L5=20)";
  let rows =
    List.filter_map
      (fun n ->
        Option.map
          (fun r ->
            ( n,
              r.PM.tflops_total,
              r.PM.tflops_per_gpu,
              Machine.Policy.name r.PM.policy ))
          (PM.best_policy Spec.summit p96 ~n_gpus:n))
      fig4_counts
  in
  Ascii.print_table
    ~header:[ "GPUs"; "PFlops"; "TF/GPU"; "autotuned policy" ]
    (List.map
       (fun (n, tf, per, pol) ->
         [
           string_of_int n;
           Printf.sprintf "%.2f" (tf /. 1000.);
           Printf.sprintf "%.3f" per;
           pol;
         ])
       rows);
  Ascii.print_plot ~x_label:"GPUs" ~y_label:"TFlop/s" ~height:14
    [
      Ascii.series ~glyph:'*' "Summit 96^3x144"
        (Array.of_list (List.map (fun (n, tf, _, _) -> (float_of_int n, tf)) rows));
    ];
  let peak = List.fold_left (fun a (_, tf, _, _) -> Float.max a tf) 0. rows in
  let at2048 = List.assoc 2048 (List.map (fun (n, tf, _, _) -> (n, tf)) rows) in
  Ascii.print_table
    ~header:[ "Check"; "Paper"; "Here" ]
    [
      [ "peak solver performance"; "approaches 1.5 PFlops";
        Printf.sprintf "%.2f PFlops" (peak /. 1000.) ];
      [ "efficiency cliff"; "large drop past ~2000 GPUs";
        Printf.sprintf "TF/GPU falls %.1fx from 512 to 8192 GPUs"
          ((List.nth rows 0 |> fun (_, _, p, _) -> p)
          /. (List.assoc 8192 (List.map (fun (n, _, p, _) -> (n, p)) rows))) ];
      [ "scaling saturates"; "yes";
        Printf.sprintf "last doubling adds %.0f%%"
          (100. *. ((peak /. at2048) -. 1.)) ];
    ]

let fig5 () =
  Ascii.banner
    "Figure 5: weak scaling on Sierra, 4-node groups (16 GPUs), 48^3 x 64";
  let stacks =
    [
      (PM.Spectrum, [ 16; 400; 1600; 3200; 4800; 6400 ]);
      (PM.Open_mpi, [ 16; 400; 800; 1600; 2400; 2800 ]);
      (PM.Mvapich2, [ 16; 400; 1600; 4000; 8000; 13500; 16000 ]);
    ]
  in
  List.iter
    (fun (stack, counts) ->
      let pts =
        List.filter_map
          (fun n ->
            Option.map
              (fun pf -> (n, pf /. 1000.))
              (PM.weak_scaling_point Spec.sierra p48 ~group_gpus:16 ~stack
                 ~n_gpus:n))
          counts
      in
      Printf.printf "%-22s %s\n"
        (PM.stack_name stack)
        (String.concat "  "
           (List.map (fun (n, pf) -> Printf.sprintf "%d:%.2fPF" n pf) pts)))
    stacks;
  let series =
    List.map2
      (fun (stack, counts) glyph ->
        Ascii.series ~glyph (PM.stack_name stack)
          (Array.of_list
             (List.filter_map
                (fun n ->
                  Option.map
                    (fun pf -> (float_of_int n, pf /. 1000.))
                    (PM.weak_scaling_point Spec.sierra p48 ~group_gpus:16 ~stack
                       ~n_gpus:n))
                counts)))
      stacks [ 'S'; 'o'; 'm' ]
  in
  Ascii.print_plot ~x_label:"GPUs" ~y_label:"PFlop/s" ~height:16 series;
  let mv13500 =
    Option.get
      (PM.weak_scaling_point Spec.sierra p48 ~group_gpus:16 ~stack:PM.Mvapich2
         ~n_gpus:13500)
    /. 1000.
  in
  Ascii.print_table
    ~header:[ "Check"; "Paper"; "Here" ]
    [
      [ "weak scaling"; "nearly perfect (linear)"; "linear by group independence" ];
      [ "peak sustained (13500 GPUs)"; "~20 PFlops, 15% of peak";
        Printf.sprintf "%.1f PFlops" mv13500 ];
      [ "MVAPICH2 penalty vs Spectrum"; "slight hit, to be tuned"; "20% (stack factor)" ];
    ]

let fig6 () =
  Ascii.banner
    "Figure 6: weak scaling on Summit with METAQ, 4-node groups (24 GPUs), 64^3 x 96";
  let counts = [ 24; 480; 1440; 2880; 4320; 5760; 6528 ] in
  let pts =
    List.filter_map
      (fun n ->
        Option.map
          (fun pf -> (n, pf /. 1000.))
          (PM.weak_scaling_point Spec.summit p64 ~group_gpus:24
             ~stack:PM.Metaq_jsrun ~n_gpus:n))
      counts
  in
  Ascii.print_table
    ~header:[ "GPUs"; "PFlops" ]
    (List.map (fun (n, pf) -> [ string_of_int n; Printf.sprintf "%.2f" pf ]) pts);
  Ascii.print_plot ~x_label:"GPUs" ~y_label:"PFlop/s" ~height:12
    [
      Ascii.series ~glyph:'M' "SpectrumMPI: METAQ"
        (Array.of_list (List.map (fun (n, pf) -> (float_of_int n, pf)) pts));
    ];
  let last = List.nth pts (List.length pts - 1) in
  Ascii.print_table
    ~header:[ "Check"; "Paper"; "Here" ]
    [
      [ "weak scaling"; "perfect"; "linear" ];
      [ "performance at ~6500 GPUs"; "~8 PFlops";
        Printf.sprintf "%.1f PFlops" (snd last) ];
    ]

let fig7 () =
  Ascii.banner
    "Figure 7: solver performance histogram, 13500-GPU Sierra run (mpi_jm + MVAPICH2)";
  let campaign =
    Core.Campaign.create ~machine:Spec.sierra ~problem:p48 ~group_gpus:16
      ~stack:PM.Mvapich2 ()
  in
  let n_tasks = 13500 / 16 in
  let samples = Core.Campaign.solver_performance_samples campaign ~n_tasks in
  let h = Util.Stats.histogram ~bins:18 samples in
  Ascii.print_histogram h;
  Printf.printf
    "%d concurrent 16-GPU solves: mean %.1f TF/solve, median %.1f, spread (std) %.1f\n"
    n_tasks (Util.Stats.mean samples) (Util.Stats.median samples)
    (Util.Stats.std samples);
  Printf.printf "aggregate: %.1f PFlops across the run\n"
    (Array.fold_left ( +. ) 0. samples /. 1000.);
  Ascii.print_table
    ~header:[ "Check"; "Paper"; "Here" ]
    [
      [ "distribution"; "peaked with low-side tail (node variation)";
        "peaked, low-side tail (slowest-node gating + locality)" ];
      [ "aggregate"; "nearly 20 PFlops";
        Printf.sprintf "%.1f PFlops" (Array.fold_left ( +. ) 0. samples /. 1000.) ];
    ]

let speedup () =
  Ascii.banner "Sec. VII: machine-to-machine speedup over Titan";
  (* whole-machine sustained production throughput: per-group
     performance x number of groups the machine holds *)
  let sustained m problem ~group_gpus ~stack =
    let n = Spec.total_gpus m in
    Option.get (PM.weak_scaling_point m problem ~group_gpus ~stack ~n_gpus:n)
    /. 1000.
  in
  let titan = sustained Spec.titan p48 ~group_gpus:32 ~stack:PM.Metaq_jsrun in
  let sierra = sustained Spec.sierra p48 ~group_gpus:16 ~stack:PM.Mvapich2 in
  let summit = sustained Spec.summit p64 ~group_gpus:24 ~stack:PM.Metaq_jsrun in
  Ascii.print_table
    ~header:[ "Machine"; "groups"; "sustained PFlops"; "speedup vs Titan"; "paper" ]
    [
      [ "Titan (32-GPU groups)";
        string_of_int (Spec.total_gpus Spec.titan / 32);
        Printf.sprintf "%.2f" titan; "1.0x"; "1x" ];
      [ "Sierra (16-GPU groups)";
        string_of_int (Spec.total_gpus Spec.sierra / 16);
        Printf.sprintf "%.2f" sierra;
        Printf.sprintf "%.1fx" (sierra /. titan); "~12x" ];
      [ "Summit (24-GPU groups)";
        string_of_int (Spec.total_gpus Spec.summit / 24);
        Printf.sprintf "%.2f" summit;
        Printf.sprintf "%.1fx" (summit /. titan); "~15x" ];
    ]
