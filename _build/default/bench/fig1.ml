(* Figure 1: the effective axial coupling from the Feynman-Hellmann
   method vs the traditional fixed-separation method, on the
   a09m310-calibrated synthetic ensemble (see DESIGN.md substitution
   table). Reproduces:

     - FH g_eff(t) with errors exploding at large t (grey points),
     - the two-state fit band (gA at ~1% from 784 samples),
     - the fit-subtracted points converging to gA (black points),
     - the traditional estimator at t_sep = 8, 10, 12 with an order of
       magnitude more samples and still a larger error (colored
       points / wide grey band). *)

module Synth = Physics.Synth
module Analysis = Physics.Analysis
module Ascii = Util.Ascii

let run () =
  Ascii.banner "Figure 1: effective gA — Feynman-Hellmann vs traditional";
  let p = Synth.a09m310 in
  let rng = Util.Rng.create 17_760_704 in
  let n_fh = 784 in
  let ens = Synth.ensemble rng p ~n:n_fh in
  let samples = Synth.paired_samples ens in
  let mean, err =
    Analysis.bootstrap_observable ~rng ~n_boot:200 samples
      (Synth.geff_observable p)
  in
  let fit =
    Analysis.fit_geff ~rng ~n_boot:200 samples
      ~observable:(Synth.geff_observable p) ~t_min:1 ~t_max:12
  in
  (* fit-subtracted ("black") points: remove the modeled excited-state
     contamination from the data *)
  let contamination t =
    fit.Analysis.fit.Util.Fit.params.(1) *. exp (-.fit.Analysis.de *. t)
  in
  let subtracted = Array.mapi (fun t g -> g -. contamination (float_of_int t)) mean in
  Printf.printf "FH ensemble: %d samples (lattice a09m310 calibration)\n" n_fh;
  Ascii.print_table
    ~header:[ "t"; "g_eff(t)"; "error"; "excited-subtracted" ]
    (List.init 13 (fun t ->
         [
           string_of_int t;
           Printf.sprintf "%.4f" mean.(t);
           Printf.sprintf "%.4f" err.(t);
           Printf.sprintf "%.4f" subtracted.(t);
         ]));
  Printf.printf
    "two-state fit over t in [%d, %d]:  gA = %.4f +- %.4f  (%.2f%%), dE = %.3f, chi2/dof = %.2f\n"
    (fst fit.Analysis.t_range) (snd fit.Analysis.t_range) fit.Analysis.ga
    fit.Analysis.ga_err
    (100. *. fit.Analysis.ga_err /. fit.Analysis.ga)
    fit.Analysis.de fit.Analysis.chi2_dof;
  (* traditional comparison *)
  let n_trad = 10 * n_fh in
  Printf.printf "\ntraditional (fixed t_sep) with %d samples (10x the FH statistics):\n"
    n_trad;
  let trad_results =
    List.map
      (fun t_sep ->
        let trad = Synth.traditional_ensemble rng p ~n:n_trad ~t_sep in
        let m = Analysis.ensemble_mean trad in
        let e = Analysis.ensemble_error trad in
        let lo = (t_sep / 2) - 1 and hi = (t_sep / 2) + 1 in
        let v, verr = Analysis.fit_plateau ~mean:m ~err:e ~t_min:lo ~t_max:hi in
        (t_sep, v, verr))
      [ 8; 10; 12 ]
  in
  Ascii.print_table
    ~header:[ "t_sep"; "plateau gA"; "error"; "error vs FH" ]
    (List.map
       (fun (ts, v, e) ->
         [
           string_of_int ts;
           Printf.sprintf "%.4f" v;
           Printf.sprintf "%.4f" e;
           Printf.sprintf "%.1fx" (e /. fit.Analysis.ga_err);
         ])
       trad_results);
  (* combined traditional estimate (weighted) *)
  let trad_comb, trad_comb_err =
    Util.Stats.weighted_mean
      (Array.of_list (List.map (fun (_, v, e) -> (v, e)) trad_results))
  in
  Printf.printf "combined traditional: gA = %.4f +- %.4f (%.2f%%)\n" trad_comb
    trad_comb_err
    (100. *. trad_comb_err /. Float.max 1e-9 trad_comb);
  (* the figure *)
  let fh_series =
    Ascii.series ~glyph:'o' "FH g_eff(t) (784 samples)"
      (Array.init 13 (fun t -> (float_of_int t, mean.(t))))
  in
  let fit_series =
    Ascii.series ~glyph:'-' "two-state fit"
      (Array.init 49 (fun i ->
           let t = float_of_int i /. 4. in
           (t, fit.Analysis.ga +. contamination t)))
  in
  let trad_series =
    Ascii.series ~glyph:'x' "traditional plateaus (7840 samples)"
      (Array.of_list (List.map (fun (ts, v, _) -> (float_of_int ts, v)) trad_results))
  in
  Ascii.print_plot ~x_label:"t" ~y_label:"g_eff" ~height:16 ~zero_y:false
    [ fh_series; fit_series; trad_series ];
  Ascii.banner "Figure 1: paper vs reproduction";
  Ascii.print_table
    ~header:[ "Quantity"; "Paper"; "Here" ]
    [
      [ "gA central value"; "1.271(13) [Nature 558, 91]";
        Printf.sprintf "%.4f(%.0f)" fit.Analysis.ga (1e4 *. fit.Analysis.ga_err) ];
      [ "FH precision"; "~1%";
        Printf.sprintf "%.2f%%" (100. *. fit.Analysis.ga_err /. fit.Analysis.ga) ];
      [ "signal region"; "small t (exp. better S/N)"; "small t (errors grow ~e^{0.29 t})" ];
      [ "traditional vs FH statistics"; "~10x more samples, larger errors";
        Printf.sprintf "10x samples, %.1fx larger error" (trad_comb_err /. fit.Analysis.ga_err) ];
    ]
