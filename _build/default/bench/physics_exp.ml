(* Additional physics experiments beyond the paper's figures: the
   domain-wall quality observable (residual mass), the explicit cost
   comparison between the sequential-insertion (traditional) and FH
   methods, the meson spectrum with momentum, and the gradient flow —
   each a substrate the production program relies on. *)

module Geometry = Lattice.Geometry
module Gauge = Lattice.Gauge
module Ascii = Util.Ascii

let residual_mass () =
  Ascii.banner "Residual mass: chiral symmetry restoration as L5 grows";
  let geom = Geometry.create [| 4; 4; 4; 8 |] in
  let gauge = Gauge.warm geom (Util.Rng.create 55) ~eps:0.25 in
  let fgauge = Gauge.with_antiperiodic_time gauge in
  let rows =
    List.map
      (fun l5 ->
        let params = Dirac.Mobius.shamir ~l5 ~m5:1.4 ~mass:0.05 in
        let solver = Solver.Dwf_solve.create params geom fgauge in
        let prop =
          Physics.Propagator.point_propagator ~tol:1e-10 ~keep_midpoint:true
            solver ~src_site:0
        in
        (l5, Physics.Propagator.residual_mass prop))
      [ 4; 6; 8 ]
  in
  Ascii.print_table
    ~header:[ "L5"; "m_res" ]
    (List.map (fun (l5, m) -> [ string_of_int l5; Printf.sprintf "%.2e" m ]) rows);
  print_endline
    "m_res -> 0 with growing L5: the domain-wall walls decouple and chiral\n\
     symmetry is restored — the reason the paper pays for a 5th dimension.";
  rows

let sequential_cost () =
  Ascii.banner "FH vs sequential insertion: the exponential-improvement economics";
  let geom = Geometry.create [| 4; 4; 4; 8 |] in
  let gauge = Gauge.unit geom in
  let params = Dirac.Mobius.mobius ~l5:6 ~m5:1.3 ~alpha:1.5 ~mass:0.2 in
  let solver = Solver.Dwf_solve.create params geom (Gauge.with_antiperiodic_time gauge) in
  let t0 = Unix.gettimeofday () in
  let prop = Physics.Propagator.point_propagator ~tol:1e-9 solver ~src_site:0 in
  let t_prop = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let _fh = Physics.Fh.fh_propagator ~tol:1e-9 solver prop in
  let t_fh = Unix.gettimeofday () -. t1 in
  let nt = Geometry.time_extent geom in
  let t2 = Unix.gettimeofday () in
  (* two representative sequential solves; the full traditional set
     needs one per insertion time *)
  let _s1 = Physics.Fh.sequential_propagator ~tol:1e-9 solver ~tau:2 prop in
  let _s2 = Physics.Fh.sequential_propagator ~tol:1e-9 solver ~tau:3 prop in
  let t_seq2 = Unix.gettimeofday () -. t2 in
  let t_seq_full = t_seq2 /. 2. *. float_of_int nt in
  Ascii.print_table
    ~header:[ "method"; "solves"; "wall (measured/projected)" ]
    [
      [ "base propagator"; "12"; Ascii.seconds t_prop ];
      [ "Feynman-Hellmann (all t)"; "12"; Ascii.seconds t_fh ];
      [ Printf.sprintf "sequential (all %d insertions)" nt;
        string_of_int (12 * nt);
        Ascii.seconds t_seq_full ^ " (projected)" ];
    ];
  Printf.printf
    "FH delivers every insertion time for ~1 extra solve per column;\n\
     the traditional estimator needs %dx that — before even counting its\n\
     exponentially worse signal-to-noise at the large t_sep it requires.\n"
    nt

let meson_spectrum () =
  Ascii.banner "Meson channels and the pion dispersion relation (free field)";
  let geom = Geometry.create [| 4; 4; 4; 16 |] in
  let gauge = Gauge.unit geom in
  let params = Dirac.Mobius.mobius ~l5:6 ~m5:1.3 ~alpha:1.5 ~mass:0.2 in
  let solver = Solver.Dwf_solve.create params geom (Gauge.with_antiperiodic_time gauge) in
  let prop = Physics.Propagator.point_propagator ~tol:1e-9 solver ~src_site:0 in
  Ascii.print_table
    ~header:[ "channel"; "m_eff(1)"; "m_eff(2)" ]
    (List.map
       (fun ch ->
         (* scalar/axial-temporal channels oscillate in sign at this
            quark mass; quote |C| effective masses *)
         let c = Array.map abs_float (Physics.Meson.correlator ch prop) in
         let m = Physics.Analysis.effective_mass c in
         [ ch.Physics.Meson.name; Printf.sprintf "%.4f" m.(1); Printf.sprintf "%.4f" m.(2) ])
       Physics.Meson.standard_channels);
  (* dispersion *)
  let e k =
    (Physics.Analysis.effective_mass (Physics.Meson.correlator ~k Physics.Meson.pion prop)).(2)
  in
  let m0 = e [| 0; 0; 0 |] in
  Ascii.print_table
    ~header:[ "momentum k"; "E(k) measured"; "E(k) lattice dispersion" ]
    (List.map
       (fun k ->
         [
           Printf.sprintf "(%d,%d,%d)" k.(0) k.(1) k.(2);
           Printf.sprintf "%.4f" (e k);
           Printf.sprintf "%.4f"
             (Physics.Meson.lattice_dispersion ~m:m0 ~k ~dims:(Geometry.dims geom));
         ])
       [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 1; 1; 0 |] ])

let gradient_flow () =
  Ascii.banner "Wilson gradient flow (field preparation, scale setting)";
  let geom = Geometry.create [| 4; 4; 4; 4 |] in
  let rng = Util.Rng.create 77 in
  let u = Gauge.warm geom rng ~eps:0.6 in
  let _, hist = Lattice.Flow.flow ~eps:0.02 ~t_max:0.2 u in
  Ascii.print_table
    ~header:[ "flow time"; "plaquette"; "t^2 <E>" ]
    (List.filter_map
       (fun (h : Lattice.Flow.history) ->
         if Float.rem (h.Lattice.Flow.t +. 1e-9) 0.04 < 2e-2 then
           Some
             [
               Printf.sprintf "%.2f" h.Lattice.Flow.t;
               Printf.sprintf "%.5f" h.Lattice.Flow.plaquette;
               Printf.sprintf "%.4f" h.Lattice.Flow.t2e;
             ]
         else None)
       hist);
  Printf.printf
    "Wilson loops on the same configuration: W(1,1)=%.4f W(2,2)=%.4f;\n\
     Polyakov loop |P| = %.4f; topological charge Q = %.3f\n"
    (Lattice.Observables.average_wilson_loop u ~r:1 ~t:1)
    (Lattice.Observables.average_wilson_loop u ~r:2 ~t:2)
    (Linalg.Cplx.abs (Lattice.Observables.polyakov_loop u))
    (Lattice.Observables.topological_charge u)

let run () =
  ignore (residual_mass ());
  sequential_cost ();
  meson_spectrum ();
  gradient_flow ()
