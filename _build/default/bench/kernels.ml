(* Real OCaml kernel microbenchmarks (Bechamel): the measured
   counterparts of the modeled quantities, plus ablations for the
   design decisions called out in DESIGN.md. One Bechamel Test.make
   per kernel. *)

open Bechamel
module Field = Linalg.Field
module Ascii = Util.Ascii

(* ---- benchmark harness ---- *)

let run_tests tests =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name o acc ->
      match Analyze.OLS.estimates o with
      | Some [ ns ] -> (name, ns) :: acc
      | _ -> acc)
    results []
  |> List.sort compare

(* ---- kernel setups ---- *)

let geom = lazy (Lattice.Geometry.create [| 8; 8; 8; 16 |])

let setup =
  lazy
    (let geom = Lazy.force geom in
     let rng = Util.Rng.create 11 in
     let gauge = Lattice.Gauge.warm geom rng ~eps:0.3 in
     let params = Dirac.Mobius.mobius ~l5:8 ~m5:1.8 ~alpha:1.5 ~mass:0.1 in
     let w = Dirac.Wilson.of_geometry geom gauge in
     let eo = Dirac.Mobius.of_geometry_eo params geom gauge in
     (geom, gauge, params, w, eo))

let run () =
  Ascii.banner "Measured OCaml kernels (Bechamel; one Test.make per kernel)";
  let geom, _gauge, params, w, eo = Lazy.force setup in
  let vol = Lattice.Geometry.volume geom in
  let half = Lattice.Geometry.half_volume geom in
  let l5 = params.Dirac.Mobius.l5 in
  let rng = Util.Rng.create 12 in
  let n4 = vol * 24 in
  let src4 = Field.create n4 and dst4 = Field.create n4 in
  Field.gaussian rng src4;
  let n5 = l5 * half * 24 in
  let src5 = Field.create n5 and dst5 = Field.create n5 in
  Field.gaussian rng src5;
  let nb = 24 * 10240 in
  let x = Field.create nb and y = Field.create nb in
  Field.gaussian rng x;
  Field.gaussian rng y;
  let h = Field.Half.create ~block:24 nb in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        Test.make ~name:"wilson_hop_8x8x8x16"
          (Staged.stage (fun () -> Dirac.Wilson.hop w ~src:src4 ~dst:dst4));
        Test.make ~name:"mobius_schur"
          (Staged.stage (fun () ->
               Dirac.Mobius.apply_schur eo ~src:src5 ~dst:dst5));
        Test.make ~name:"m5inv"
          (Staged.stage (fun () ->
               Dirac.Mobius.apply_m5inv params ~n4:half ~src:src5 ~dst:dst5));
        Test.make ~name:"blas1_axpy_246k"
          (Staged.stage (fun () -> Field.axpy 1.0000001 x y));
        Test.make ~name:"blas1_dot_246k" (Staged.stage (fun () -> Field.dot_re x y));
        Test.make ~name:"half_encode_246k" (Staged.stage (fun () -> Field.Half.encode x h));
        Test.make ~name:"half_decode_246k" (Staged.stage (fun () -> Field.Half.decode h y));
      ]
  in
  let results = run_tests tests in
  let flops_of = function
    | "kernels/wilson_hop_8x8x8x16" ->
      Some (float_of_int (vol * Dirac.Flops.wilson_hop_per_site))
    | "kernels/mobius_schur" ->
      Some (float_of_int (l5 * half * Dirac.Flops.schur_per_5d_site))
    | "kernels/m5inv" ->
      Some (float_of_int (l5 * half) *. float_of_int Dirac.Flops.m5inv_per_5d_site)
    | "kernels/blas1_axpy_246k" -> Some (2. *. float_of_int nb)
    | "kernels/blas1_dot_246k" -> Some (2. *. float_of_int nb)
    | _ -> None
  in
  Ascii.print_table
    ~header:[ "kernel"; "time/call"; "rate" ]
    (List.map
       (fun (name, ns) ->
         let t = ns *. 1e-9 in
         [
           name;
           Ascii.seconds t;
           (match flops_of name with
           | Some fl -> Ascii.flops (fl /. t)
           | None ->
             (* bandwidth-style kernels *)
             Ascii.bytes_per_sec (float_of_int nb *. 10. /. t));
         ])
       results);
  print_endline
    "(the paper's GPUs sustain 139-975 GB/s on this stencil; the OCaml\n\
     kernels above are the functional substrate, not a performance claim)"

(* ---- ablations (DESIGN.md design decisions) ---- *)

let safe_axpy alpha (x : Field.t) (y : Field.t) =
  for i = 0 to Field.length x - 1 do
    Bigarray.Array1.set y i (Bigarray.Array1.get y i +. (alpha *. Bigarray.Array1.get x i))
  done

let ablation () =
  Ascii.banner "Ablations: design decisions measured";
  (* 1. safe vs unsafe Bigarray access *)
  let nb = 24 * 10240 in
  let rng = Util.Rng.create 21 in
  let x = Field.create nb and y = Field.create nb in
  Field.gaussian rng x;
  let tests =
    Test.make_grouped ~name:"ablation"
      [
        Test.make ~name:"axpy_unsafe" (Staged.stage (fun () -> Field.axpy 1.0 x y));
        Test.make ~name:"axpy_bounds_checked"
          (Staged.stage (fun () -> safe_axpy 1.0 x y));
      ]
  in
  let results = run_tests tests in
  let time name = List.assoc ("ablation/" ^ name) results in
  Printf.printf
    "bounds-checked axpy: %.2fx slower than unsafe (the kernels validate\n\
     lengths once, then use unsafe accesses)\n"
    (time "axpy_bounds_checked" /. time "axpy_unsafe");
  (* 2. double vs mixed-precision CG on a real solve *)
  let geom = Lattice.Geometry.create [| 4; 4; 4; 8 |] in
  let gauge = Lattice.Gauge.warm geom (Util.Rng.create 22) ~eps:0.4 in
  let params = Dirac.Mobius.mobius ~l5:6 ~m5:1.8 ~alpha:1.5 ~mass:0.1 in
  let solver =
    Solver.Dwf_solve.create params geom (Lattice.Gauge.with_antiperiodic_time gauge)
  in
  let rhs = Field.create (Solver.Dwf_solve.field_length solver) in
  Bigarray.Array1.set rhs 0 1.;
  let _, st_d = Solver.Dwf_solve.solve ~tol:1e-8 solver ~rhs in
  let _, st_m =
    Solver.Dwf_solve.solve
      ~precision:(Solver.Dwf_solve.Mixed Solver.Mixed.default_config) ~tol:1e-8
      solver ~rhs
  in
  Ascii.print_table
    ~header:[ "solver"; "iterations"; "reliable updates"; "wall"; "flops" ]
    [
      [ "double CG"; string_of_int st_d.Solver.Cg.iterations; "-";
        Ascii.seconds st_d.Solver.Cg.seconds; Ascii.si_float st_d.Solver.Cg.flops ];
      [ "double-half CG"; string_of_int st_m.Solver.Cg.iterations;
        string_of_int st_m.Solver.Cg.reliable_updates;
        Ascii.seconds st_m.Solver.Cg.seconds; Ascii.si_float st_m.Solver.Cg.flops ];
    ];
  print_endline
    "(on a GPU the half-precision storage doubles the effective bandwidth —\n\
     here it exercises the identical reliable-update control flow)";
  (* 3. red-black preconditioning vs unpreconditioned normal equations *)
  let _, st_eo = Solver.Dwf_solve.solve ~tol:1e-8 solver ~rhs in
  let _, st_full = Solver.Dwf_solve.solve_full ~tol:1e-8 solver ~rhs in
  Ascii.print_table
    ~header:[ "operator"; "iterations"; "flops" ]
    [
      [ "red-black Schur (paper)"; string_of_int st_eo.Solver.Cg.iterations;
        Ascii.si_float st_eo.Solver.Cg.flops ];
      [ "unpreconditioned D^dag D"; string_of_int st_full.Solver.Cg.iterations;
        Ascii.si_float st_full.Solver.Cg.flops ];
    ]

(* Solver ablations with physics content: BiCGStab vs CGNE on the
   Mobius operator, and critical slowing down (condition number and CG
   iterations vs quark mass). *)
let solver_ablation () =
  Ascii.banner "Ablations: solver algorithms and critical slowing down";
  let geom = Lattice.Geometry.create [| 4; 4; 4; 8 |] in
  let gauge = Lattice.Gauge.warm geom (Util.Rng.create 23) ~eps:0.3 in
  let fgauge = Lattice.Gauge.with_antiperiodic_time gauge in
  (* 1. BiCGStab directly on D vs CG on the Schur normal equations *)
  let params = Dirac.Mobius.mobius ~l5:6 ~m5:1.8 ~alpha:1.5 ~mass:0.1 in
  let solver = Solver.Dwf_solve.create params geom fgauge in
  let rhs = Field.create (Solver.Dwf_solve.field_length solver) in
  Bigarray.Array1.set rhs 0 1.;
  let _, st_cg = Solver.Dwf_solve.solve ~tol:1e-8 solver ~rhs in
  let d_full = Dirac.Mobius.of_geometry params geom fgauge in
  let apply src dst = Dirac.Mobius.apply d_full ~src ~dst in
  let _, st_bi =
    Solver.Bicgstab.solve ~apply ~b:rhs ~tol:1e-8 ~max_iter:20_000
      ~flops_per_apply:1. ()
  in
  Ascii.print_table
    ~header:[ "solver"; "iterations"; "converged"; "wall" ]
    [
      [ "red-black CGNE (paper)"; string_of_int st_cg.Solver.Cg.iterations;
        string_of_bool st_cg.Solver.Cg.converged; Ascii.seconds st_cg.Solver.Cg.seconds ];
      [ "BiCGStab on D (5D, unpreconditioned)"; string_of_int st_bi.Solver.Cg.iterations;
        string_of_bool st_bi.Solver.Cg.converged; Ascii.seconds st_bi.Solver.Cg.seconds ];
    ];
  (* 2. critical slowing down: condition number & iterations vs mass *)
  print_endline "\ncritical slowing down of the Schur normal operator vs quark mass:";
  let rows =
    List.map
      (fun mass ->
        let p = Dirac.Mobius.mobius ~l5:4 ~m5:1.8 ~alpha:1.5 ~mass in
        let s = Solver.Dwf_solve.create p geom fgauge in
        let rhs = Field.create (Solver.Dwf_solve.field_length s) in
        Bigarray.Array1.set rhs 0 1.;
        let _, st = Solver.Dwf_solve.solve ~tol:1e-8 s ~rhs in
        let eo = Dirac.Mobius.of_geometry_eo p geom fgauge in
        let n = Dirac.Mobius.eo_field_length eo in
        let apply src dst = Dirac.Mobius.apply_schur_normal eo ~src ~dst in
        let est = Solver.Eigen.condition_number ~apply ~n () in
        (mass, st.Solver.Cg.iterations, est))
      [ 0.4; 0.2; 0.1; 0.05 ]
  in
  Ascii.print_table
    ~header:[ "quark mass"; "CG iterations"; "condition number"; "CG bound" ]
    (List.map
       (fun (m, it, est) ->
         [
           Printf.sprintf "%.2f" m;
           string_of_int it;
           Printf.sprintf "%.1f" est.Solver.Eigen.condition_number;
           Printf.sprintf "%.0f"
             (Solver.Eigen.cg_iteration_bound
                ~condition_number:est.Solver.Eigen.condition_number ~tol:1e-8);
         ])
       rows);
  print_endline
    "lighter quarks -> worse conditioning -> more iterations: the cost\n\
     driver that makes physical-point lattice QCD need these machines."
