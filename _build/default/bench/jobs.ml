(* Job-management experiments: the METAQ idle-recovery claim, the
   mpi_jm partitioned startup, GPU-granular placement, and the
   autotuner demos (kernel launch parameters + communication policy). *)

module Sched = Jobman.Schedulers
module Cluster = Jobman.Cluster
module Task = Jobman.Task
module Startup = Jobman.Startup
module Placement = Jobman.Placement
module Ascii = Util.Ascii

let metaq () =
  Ascii.banner "Sec. V: naive bundling vs METAQ vs mpi_jm (discrete-event sim)";
  let rng = Util.Rng.create 90125 in
  let n_nodes = 128 in
  let tasks = Task.campaign ~spread:0.15 ~n:512 ~nodes:4 ~duration:1800. rng in
  let mk () =
    Cluster.create ~n_nodes ~gpus_per_node:4 ~cpus_per_node:40 ~jitter:0.05
      (Util.Rng.create 4)
  in
  let naive = Sched.naive ~cluster:(mk ()) ~tasks in
  let metaq = Sched.metaq ~cluster:(mk ()) ~tasks () in
  let jm = Sched.mpi_jm ~block_nodes:8 ~cluster:(mk ()) ~tasks () in
  Ascii.print_table
    ~header:[ "Strategy"; "makespan"; "utilization"; "idle"; "speedup vs naive" ]
    (List.map
       (fun o ->
         [
           o.Sched.strategy;
           Ascii.seconds o.Sched.makespan;
           Printf.sprintf "%.1f %%" (100. *. o.Sched.utilization);
           Printf.sprintf "%.1f %%" (100. *. o.Sched.idle_fraction);
           Printf.sprintf "%.2fx" (naive.Sched.makespan /. o.Sched.makespan);
         ])
       [ naive; metaq; jm ]);
  Ascii.print_table
    ~header:[ "Check"; "Paper"; "Here" ]
    [
      [ "naive bundling idle"; "20-25%";
        Printf.sprintf "%.0f%%" (100. *. naive.Sched.idle_fraction) ];
      [ "METAQ recovery"; "~25% across-the-board speed-up";
        Printf.sprintf "%.0f%% speed-up"
          (100. *. ((naive.Sched.makespan /. metaq.Sched.makespan) -. 1.)) ];
      [ "mpi_jm vs METAQ"; "blocks prevent fragmentation";
        Printf.sprintf "%.1f%% faster than METAQ"
          (100. *. ((metaq.Sched.makespan /. jm.Sched.makespan) -. 1.)) ];
    ]

let startup () =
  Ascii.banner "Sec. V: startup at scale — monolithic mpirun vs mpi_jm lumps";
  let rng = Util.Rng.create 5150 in
  let rows =
    List.map
      (fun nodes ->
        let mono, attempts = Startup.monolithic Startup.default ~nodes in
        let lump = Startup.mpi_jm ~nodes ~lump_nodes:128 rng in
        ( nodes,
          mono,
          attempts,
          lump.Startup.total_s,
          lump.Startup.lumps,
          lump.Startup.lumps_failed ))
      [ 128; 512; 1024; 2048; 4224 ]
  in
  Ascii.print_table
    ~header:
      [ "nodes"; "monolithic"; "E[attempts]"; "mpi_jm lumps"; "lumps"; "failed" ]
    (List.map
       (fun (n, mono, att, lump, nl, nf) ->
         [
           string_of_int n;
           Ascii.seconds mono;
           Printf.sprintf "%.2f" att;
           Ascii.seconds lump;
           string_of_int nl;
           string_of_int nf;
         ])
       rows);
  let _, _, _, t4224, _, _ = List.nth rows 4 in
  Ascii.print_table
    ~header:[ "Check"; "Paper"; "Here" ]
    [
      [ "4224-node startup"; "3-5 minutes"; Ascii.seconds t4224 ];
      [ "lumps connected"; "< 1 minute";
        Printf.sprintf "%.0f s of connects" (float_of_int ((4224 + 127) / 128) *. 1.5) ];
      [ "bad nodes"; "failed lumps ignored, job proceeds"; "same (dropped lumps)" ];
    ]

let placement () =
  Ascii.banner "Sec. VII: GPU-granular placement — three 16-GPU jobs on 8 Summit nodes";
  match Placement.place ~n_jobs:3 ~gpus_per_job:16 ~nodes:8 ~gpus_per_node:6 with
  | None -> print_endline "placement failed (unexpected)"
  | Some ps ->
    Ascii.print_table
      ~header:[ "job"; "nodes used"; "GPUs/node"; "efficiency" ]
      (List.map
         (fun p ->
           [
             string_of_int (p.Placement.job + 1);
             string_of_int p.Placement.nodes_used;
             string_of_int p.Placement.gpus_per_node_used;
             Printf.sprintf "%.2f" p.Placement.efficiency;
           ])
         ps);
    Printf.printf
      "aggregate efficiency %.3f — the 2-GPU/node job pays a penalty,\n\
       \"largely mitigated by the backfilling capability of mpi_jm\".\n"
      (Placement.aggregate_efficiency ps)

let autotune () =
  Ascii.banner "Sec. IV-V: run-time autotuning (kernel launch + communication policy)";
  (* kernel autotuning on the real Wilson stencil *)
  let tuner = Autotune.Tuner.create ~repeats:3 () in
  let geom = Lattice.Geometry.create [| 8; 8; 8; 8 |] in
  let gauge = Lattice.Gauge.warm geom (Util.Rng.create 3) ~eps:0.3 in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let n = Lattice.Geometry.volume geom * 24 in
  let src = Linalg.Field.create n and dst = Linalg.Field.create n in
  Linalg.Field.gaussian (Util.Rng.create 4) src;
  let t0 = Unix.gettimeofday () in
  let winner, _ = Autotune.Variants.tune_hop tuner w ~src ~dst ~signature:"8888/double" in
  let t_first = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let winner2, _ = Autotune.Variants.tune_hop tuner w ~src ~dst ~signature:"8888/double" in
  let t_cached = Unix.gettimeofday () -. t1 in
  Printf.printf
    "wilson_hop on 8^4: brute-force search picked '%s' in %s; cached lookup '%s' in %s\n"
    winner (Ascii.seconds t_first) winner2 (Ascii.seconds t_cached);
  let axpy_winner, _ = Autotune.Variants.tune_axpy tuner ~n:(1 lsl 16) in
  Printf.printf "axpy 64k: picked '%s'\n" axpy_winner;
  List.iter
    (fun e ->
      Printf.printf "  cache: %-12s %-14s -> %-9s (%d candidates, %s)\n"
        e.Autotune.Tuner.kernel e.Autotune.Tuner.signature e.Autotune.Tuner.winner
        e.Autotune.Tuner.candidates_tried
        (Ascii.seconds e.Autotune.Tuner.time_s))
    (Autotune.Tuner.entries tuner);
  (* communication-policy autotuning across machines and scales *)
  let ct = Autotune.Comm_tune.create () in
  let p48 = Machine.Perf_model.problem ~dims:[| 48; 48; 48; 64 |] ~l5:20 in
  print_endline "\ncommunication-policy autotuning (policy chosen per machine & scale):";
  Ascii.print_table
    ~header:[ "machine"; "16 GPUs"; "128 GPUs"; "2048 GPUs" ]
    (List.map
       (fun m ->
         m.Machine.Spec.name
         :: List.map
              (fun n ->
                match Autotune.Comm_tune.pick ct m p48 ~n_gpus:n with
                | Some (pol, _) -> Machine.Policy.name pol
                | None -> "-")
              [ 16; 128; 2048 ])
       [ Machine.Spec.titan; Machine.Spec.ray; Machine.Spec.sierra;
         Machine.Spec.summit ]);
  (* a second pass over the same configurations is served from cache *)
  List.iter
    (fun m -> ignore (Autotune.Comm_tune.pick ct m p48 ~n_gpus:16))
    [ Machine.Spec.titan; Machine.Spec.ray; Machine.Spec.sierra ];
  Printf.printf
    "searches: %d, cache hits on reuse: %d — \"performance portability across\n\
     GPU generations ... always use the optimum communication strategy\".\n"
    (Autotune.Comm_tune.tune_count ct)
    (Autotune.Comm_tune.hit_count ct)

let failures () =
  Ascii.banner "Sec. V: MPI_Abort takes down the lump — why lumps stay small";
  let r = Util.Rng.create 1968 in
  let sweep =
    Jobman.Failures.lump_size_sweep ~abort_prob:0.005 ~n_nodes:1024 ~job_nodes:4
      ~n_tasks:1024 ~duration:1800. ~lump_sizes:[ 16; 32; 64; 128; 256 ] r
  in
  Ascii.print_table
    ~header:
      [ "lump nodes"; "lumps lost"; "nodes lost"; "requeued"; "completed";
        "capacity left"; "makespan" ]
    (List.map
       (fun (o : Jobman.Failures.outcome) ->
         [
           string_of_int o.Jobman.Failures.lump_nodes;
           string_of_int o.Jobman.Failures.lumps_lost;
           string_of_int o.Jobman.Failures.nodes_lost;
           string_of_int o.Jobman.Failures.tasks_requeued;
           Printf.sprintf "%d/1024" o.Jobman.Failures.completed;
           Printf.sprintf "%.0f %%" (100. *. o.Jobman.Failures.capacity_left);
           Ascii.seconds o.Jobman.Failures.makespan;
         ])
       sweep);
  print_endline
    "\"a call to MPI_Abort in a disconnected job still brings the entire lump\n\
     down ... This led us to use relatively small lump sizes on new systems\n\
     that may be suffering from pre-acceptance issues.\""

let pipeline () =
  Ascii.banner "Sec. VI: contraction co-scheduling makes the CPU work free";
  let r = Util.Rng.create 2112 in
  let tasks = Jobman.Pipeline.campaign ~batch:4 ~n_props:512 ~prop_nodes:4 ~duration:1800. r in
  let sep, cos = Jobman.Pipeline.compare_modes ~n_nodes:128 ~tasks in
  Ascii.print_table
    ~header:[ "mode"; "makespan"; "allocation billed (node-s)"; "contraction overhead" ]
    [
      [ sep.Jobman.Pipeline.mode;
        Ascii.seconds sep.Jobman.Pipeline.makespan;
        Printf.sprintf "%.0f" sep.Jobman.Pipeline.billed;
        Printf.sprintf "%.0f node-s (%.1f%%)" sep.Jobman.Pipeline.contraction_overhead
          (100. *. sep.Jobman.Pipeline.contraction_overhead /. sep.Jobman.Pipeline.gpu_work) ];
      [ cos.Jobman.Pipeline.mode;
        Ascii.seconds cos.Jobman.Pipeline.makespan;
        Printf.sprintf "%.0f" cos.Jobman.Pipeline.billed; "0 (amortized on busy CPUs)" ];
    ];
  print_endline
    "co-scheduling removes the contraction allocation entirely — \"their\n\
     cost is brought to zero\" (Sec. VI: contractions are 3% of the\n\
     computation; I/O another 0.5%)."
