(* Figure 2: the application workflow, run for real end-to-end on a
   small lattice: gauge generation -> 12+12 domain-wall solves ->
   contractions -> I/O -> analysis, with the measured time budget
   compared to the paper's 96.5 / 3 / 0.5 split. *)

module Workflow = Core.Workflow
module Ascii = Util.Ascii

let run ?(dims = [| 4; 4; 4; 8 |]) ?(l5 = 4) ?(n_configs = 2) () =
  Ascii.banner "Figure 2: application workflow (real run, laptop scale)";
  let archive = Filename.temp_file "neutron_fall_workflow" ".nfh5" in
  let spec =
    {
      Workflow.default_spec with
      Workflow.dims;
      l5;
      n_configs;
      n_thermalize = 10;
      n_decorrelate = 4;
      tol = 1e-8;
      io_path = Some archive;
    }
  in
  Printf.printf
    "lattice %s x L5=%d, Mobius(alpha=%.1f, M5=%.1f), mass=%.2f, beta=%.2f, %d configurations\n"
    (String.concat "x" (Array.to_list (Array.map string_of_int spec.Workflow.dims)))
    spec.Workflow.l5 spec.Workflow.alpha spec.Workflow.m5 spec.Workflow.mass
    spec.Workflow.beta n_configs;
  let r = Workflow.run ~spec () in
  print_endline "\nworkflow trace (per Fig 2):";
  Printf.printf "  [I/O   ] load/generate gluonic field      %s\n"
    (Ascii.seconds r.Workflow.timing.Workflow.gauge_s);
  Printf.printf "  [GPU   ] calculate propagators (x%d cols)  %s\n"
    (24 * n_configs)
    (Ascii.seconds r.Workflow.timing.Workflow.propagator_s);
  Printf.printf "  [CPU   ] propagator contractions           %s\n"
    (Ascii.seconds r.Workflow.timing.Workflow.contraction_s);
  Printf.printf "  [I/O   ] write propagators/results         %s\n"
    (Ascii.seconds r.Workflow.timing.Workflow.io_s);
  let prop, contract, io = Workflow.time_fractions r.Workflow.timing in
  Ascii.print_table
    ~header:[ "Stage"; "Paper"; "Here" ]
    [
      [ "propagators"; "96.5 %"; Printf.sprintf "%.1f %%" (100. *. prop) ];
      [ "contractions"; "3 %"; Printf.sprintf "%.1f %%" (100. *. contract) ];
      [ "I/O"; "0.5 %"; Printf.sprintf "%.1f %%" (100. *. io) ];
    ];
  Printf.printf "plaquette: %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun m -> Printf.sprintf "%.4f" m.Workflow.plaquette)
             r.Workflow.measurements)));
  Printf.printf "pion effective mass (mid-plateau): %.3f +- %.3f\n"
    (fst r.Workflow.pion_mass) (snd r.Workflow.pion_mass);
  Printf.printf "solver work: %s across %d CG iterations (%s sustained in OCaml)\n"
    (Ascii.si_float r.Workflow.total_flops ^ "Flop")
    (Array.fold_left
       (fun a m -> a + m.Workflow.solver_iterations)
       0 r.Workflow.measurements)
    (Ascii.flops r.Workflow.ocaml_flops_per_s);
  let h5 = Qio.H5lite.load archive in
  Printf.printf "archive: %d datasets in %s (verified CRC on load)\n"
    (List.length (Qio.H5lite.paths h5))
    archive;
  Sys.remove archive
