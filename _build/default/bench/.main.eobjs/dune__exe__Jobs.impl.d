bench/jobs.ml: Autotune Dirac Jobman Lattice Linalg List Machine Printf Unix Util
