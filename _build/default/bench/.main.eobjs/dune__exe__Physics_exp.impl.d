bench/physics_exp.ml: Array Dirac Float Lattice Linalg List Physics Printf Solver Unix Util
