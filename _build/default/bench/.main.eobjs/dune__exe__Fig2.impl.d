bench/fig2.ml: Array Core Filename List Printf Qio String Sys Util
