bench/main.mli:
