bench/scaling.ml: Array Core Float List Machine Option Printf String Util
