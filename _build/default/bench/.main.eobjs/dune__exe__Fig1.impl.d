bench/fig1.ml: Array Float List Physics Printf Util
