bench/tables.ml: Core Machine Util
