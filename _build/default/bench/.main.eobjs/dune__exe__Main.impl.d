bench/main.ml: Array Fig1 Fig2 Jobs Kernels List Physics_exp Printf Scaling Sys Tables
