bench/kernels.ml: Analyze Bechamel Benchmark Bigarray Dirac Hashtbl Lattice Lazy Linalg List Measure Printf Solver Staged Test Time Toolkit Util
