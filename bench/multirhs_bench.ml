(* Batched multi-RHS engine experiment: Wilson.hop_multi streaming the
   gauge links once for k right-hand sides vs k single-RHS hops, the
   batched CG front end vs k independent solves, the amortized-traffic
   model rows, and the batch-width autotuner's chosen winner. Rows
   merge into BENCH_kernels.json alongside the pool and fused
   experiments'.

   Fairness: every measured point processes the same KMAX right-hand
   sides — a width-k row as KMAX/k calls of width k — so a wide batch
   is only faster by the gauge re-streaming it avoids, never by doing
   less work. The model rows record Perf_model.mrhs_bytes_per_site
   (modeled bytes/site/RHS, not a measured time): the link term drops
   k-fold while the spinor stream is per-vector, the ceiling the
   measured rows chase on a streaming-bound box. *)

module Field = Linalg.Field
module Wilson = Dirac.Wilson
module Pool = Util.Pool
module Ascii = Util.Ascii
open Bench_json

let time_ns = Pool_bench.time_ns
let kmax = 8

let mk n seed =
  let v = Field.create n in
  Field.gaussian (Util.Rng.create seed) v;
  v

let run ?(out = "BENCH_kernels.json") () =
  Ascii.banner "batched multi-RHS engine: k RHS per gauge-link stream";
  let geom = Lattice.Geometry.create [| 8; 8; 8; 8 |] in
  let gauge = Lattice.Gauge.warm geom (Util.Rng.create 31) ~eps:0.3 in
  let w = Wilson.of_geometry geom gauge in
  let vol = Lattice.Geometry.volume geom in
  let nf = vol * Wilson.floats_per_site in
  let srcs = Array.init kmax (fun i -> mk nf (40 + i)) in
  let dsts = Array.init kmax (fun _ -> Field.create nf) in
  (* serial hop at each width: KMAX RHS as KMAX/k width-k batches *)
  let serial = Pool.shared ~domains:1 in
  let hop_at_width k () =
    let off = ref 0 in
    while !off < kmax do
      Wilson.hop_multi_with serial w
        ~srcs:(Array.sub srcs !off k)
        ~dsts:(Array.sub dsts !off k);
      off := !off + k
    done
  in
  let widths = [ 1; 2; 4; 8 ] in
  let t1 = time_ns (hop_at_width 1) in
  let hop_rows =
    List.map
      (fun k ->
        let t = if k = 1 then t1 else time_ns (hop_at_width k) in
        {
          kernel = "wilson_hop_multi";
          n = vol;
          geometry = Printf.sprintf "k%d_serial" k;
          ns_per_op = t;
          speedup = t1 /. t;
        })
      widths
  in
  (* the model's view of the same sweep: bytes/site/RHS with the link
     term amortized k-fold (ns_per_op column holds modeled bytes, the
     speedup column the traffic ratio's inverse — the bound a
     perfectly streaming-limited hop would hit) *)
  let model_rows =
    List.map
      (fun k ->
        {
          kernel = "wilson_hop_multi_model";
          n = vol;
          geometry = Printf.sprintf "k%d" k;
          ns_per_op = Machine.Perf_model.mrhs_bytes_per_site ~k;
          speedup = 1. /. Machine.Perf_model.mrhs_traffic_ratio ~k;
        })
      widths
  in
  (* batched solve: k systems against the Wilson normal operator — one
     solve_multi (batched stencil + Multi_blas tail + masking) vs k
     independent Cg.solve. Identical trajectories by construction; the
     batch only wins traffic. *)
  let solve_rows =
    let sg = Lattice.Geometry.create [| 4; 4; 4; 4 |] in
    let sgauge = Lattice.Gauge.warm sg (Util.Rng.create 32) ~eps:0.3 in
    let sw = Wilson.of_geometry sg sgauge in
    let sn = Lattice.Geometry.volume sg * Wilson.floats_per_site in
    let k = 4 and mass = 0.2 in
    let bs = Array.init k (fun i -> mk sn (50 + i)) in
    let tmps = Array.init k (fun _ -> Field.create sn) in
    let apply_multi xs ys =
      let kk = Array.length xs in
      let ts = Array.sub tmps 0 kk in
      Wilson.apply_multi sw ~mass ~srcs:xs ~dsts:ts;
      Wilson.apply_dagger_multi sw ~mass ~srcs:ts ~dsts:ys
    in
    let t0 = Field.create sn in
    let apply_one x y =
      Wilson.apply sw ~mass ~src:x ~dst:t0;
      Wilson.apply_dagger sw ~mass ~src:t0 ~dst:y
    in
    let fpa = 2. *. float_of_int (Dirac.Flops.wilson_apply_per_site * (sn / 24)) in
    let tol = 1e-8 and max_iter = 200 in
    let t_indep =
      time_ns ~repeats:3 (fun () ->
          Array.iter
            (fun b ->
              ignore
                (Solver.Cg.solve ~apply:apply_one ~b ~tol ~max_iter
                   ~flops_per_apply:fpa ()
                  : Field.t * Solver.Cg.stats))
            bs)
    in
    let t_batched =
      time_ns ~repeats:3 (fun () ->
          ignore
            (Solver.Cg.solve_multi ~fused:true ~apply:apply_multi ~bs ~tol
               ~max_iter ~flops_per_apply:fpa ()
              : Field.t array * Solver.Cg.stats array))
    in
    [
      { kernel = "cg_solve_multi"; n = sn; geometry = "k4_independent";
        ns_per_op = t_indep; speedup = 1. };
      { kernel = "cg_solve_multi"; n = sn; geometry = "k4_batched";
        ns_per_op = t_batched; speedup = t_indep /. t_batched };
    ]
  in
  (* the batch-width tuner's chosen winner for this shape, re-measured
     against the always-present width-1 serial baseline *)
  let tuned_rows =
    let tuner = Autotune.Tuner.create () in
    let winner, plan =
      Autotune.Variants.tune_hop_multi tuner w ~srcs ~dsts ~signature:"bench"
    in
    let run_plan () =
      let k = plan.Autotune.Variants.k in
      let off = ref 0 in
      while !off < kmax do
        let ss = Array.sub srcs !off k and ds = Array.sub dsts !off k in
        (match plan.Autotune.Variants.geometry with
        | None -> Wilson.hop_multi_with serial w ~srcs:ss ~dsts:ds
        | Some (d, c) ->
          Wilson.hop_multi_with (Pool.shared ~domains:d) ~chunk:c w ~srcs:ss
            ~dsts:ds);
        off := !off + k
      done
    in
    let t_winner = time_ns run_plan in
    [
      {
        kernel = "wilson_hop_multi_tuned";
        n = vol;
        geometry = winner;
        ns_per_op = t_winner;
        speedup = t1 /. t_winner;
      };
    ]
  in
  let rows = hop_rows @ model_rows @ solve_rows @ tuned_rows in
  Bench_json.print_table rows;
  Bench_json.write ~file:out
    ~replacing:
      [
        "wilson_hop_multi"; "wilson_hop_multi_model"; "cg_solve_multi";
        "wilson_hop_multi_tuned";
      ]
    rows;
  Printf.printf
    "%d rows -> %s (model rows: bytes/site/RHS with the link term /k;\n\
     measured k-rows process the same %d RHS regardless of width)\n"
    (List.length rows) out kmax;
  Pool.shutdown_shared ()
