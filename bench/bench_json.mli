(** Shared machine-readable output for the kernel benchmarks: one
    BENCH_kernels.json, one JSON object per line, merged line-wise so
    an experiment replaces exactly the kernels it re-measured and
    preserves everyone else's rows verbatim. *)

type row = {
  kernel : string;
  n : int;
  geometry : string;  (** "serial", "d<d>_c<c>", "fused_serial", ... *)
  ns_per_op : float;
  speedup : float;  (** vs the baseline row of the same (kernel, n) *)
}

val row_line : row -> string

val kernel_of_line : string -> string option
(** The ["kernel"] key of one JSON line, if present. *)

val preserved_lines : file:string -> replacing:string list -> string list
(** Rows already in [file] whose kernel is not being replaced,
    normalized (no trailing comma). *)

val write : file:string -> replacing:string list -> row list -> unit
(** Merge [rows] into [file]: existing rows of the kernels in
    [replacing] — and of every kernel present in [rows], listed or
    not — are replaced; all others are preserved, and the merged lines
    are written in sorted order so the row order is a function of the
    file's contents alone (reruns diff cleanly). Idempotent under
    rerun: writing the same experiment twice never duplicates rows. *)

val print_table : row list -> unit
