(* Low-mode deflation experiment: a 24-solve campaign slice (the
   paper's 12 spin-color columns x 2 sources per configuration)
   against one SPD operator with a handful of well-separated small
   eigenvalues — the regime where the FH solves burn their time. For
   each deflation rank the Lanczos setup is timed apart from the
   solves, so the rows record the real trade the tuner prices: the
   per-solve iteration/time reduction the space buys, what the space
   cost to build, and the measured break-even solve count
   (Perf_model.deflation_break_even_solves) after which the setup has
   paid for itself. The model rows record the Ritz-compressed
   condition number lambda_max/lambda_cut and the classical
   sqrt-kappa iteration ratio it predicts; the tuned row re-measures
   Variants.tune_deflation's winner as a whole campaign (setup
   amortized in) against the undeflated campaign. Rows merge into
   BENCH_kernels.json alongside the other experiments'. *)

module Field = Linalg.Field
module Pool = Util.Pool
module Ascii = Util.Ascii
open Bench_json

let time_ns = Pool_bench.time_ns
let solves = 24
let n = 24 * 100
let ranks = [ 4; 8 ]

(* Eight separated low modes (geometric 2.4x spacing) under a unit
   bulk: kappa ~ 2e3 undeflated, every rank candidate covers a
   genuinely separated prefix of the cluster (a rank chasing
   near-degenerate bulk modes would pay an unbounded Lanczos bill —
   exactly the failure mode the tuner exists to refuse). *)
let low = Array.init 8 (fun i -> 1e-3 *. (2.4 ** float_of_int i))

let diag =
  Array.init n (fun i ->
      if i < Array.length low then low.(i)
      else 1. +. (float_of_int i /. float_of_int n))

(* The operator is applied as [sweeps_per_apply] passes of its
   diagonal root D^(1/K): same spectrum, but each apply streams the
   vector K times — the arithmetic intensity of a real stencil
   (the Wilson normal operator is two 8-point hops per apply). At a
   diag-multiply apply cost the Lanczos build is dominated by its
   dense reorthogonalization instead of its operator applies, and the
   setup-vs-solves amortization the experiment prices would be an
   artifact of the toy operator. *)
let sweeps_per_apply = 16

let root =
  Array.map (fun d -> d ** (1. /. float_of_int sweeps_per_apply)) diag

let apply (x : Field.t) (y : Field.t) =
  Field.blit x y;
  for _ = 1 to sweeps_per_apply do
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set y i
        (root.(i) *. Bigarray.Array1.unsafe_get y i)
    done
  done

let mk seed =
  let v = Field.create n in
  Field.gaussian (Util.Rng.create seed) v;
  v

let run ?(out = "BENCH_kernels.json") () =
  Ascii.banner "low-mode deflation: amortized Lanczos spaces vs plain CG";
  let rhs = Array.init solves (fun i -> mk (100 + i)) in
  let iters = ref 0 in
  let campaign ?deflate () =
    iters := 0;
    Array.iter
      (fun b ->
        let _, st =
          Solver.Cg.solve ?deflate ~apply ~b ~tol:1e-10 ~max_iter:(100 * n)
            ~flops_per_apply:(2. *. float_of_int (sweeps_per_apply * n))
            ()
        in
        iters := !iters + st.Solver.Cg.iterations)
      rhs
  in
  let t_undefl = time_ns (campaign ?deflate:None) in
  let iters_undefl = float_of_int !iters /. float_of_int solves in
  let per_rank =
    List.map
      (fun rank ->
        let space = ref None in
        let setup () =
          space :=
            Some
              (Solver.Deflate.of_lanczos ~config_hash:0
                 (Solver.Lanczos.lowest ~tol:1e-6 ~rank ~apply ~n
                    ~rng:(Util.Rng.create (7 + rank))
                    ()))
        in
        let t_setup = time_ns setup in
        let d = Option.get !space in
        let t_defl = time_ns (fun () -> campaign ~deflate:d ()) in
        (rank, t_setup, t_defl, float_of_int !iters /. float_of_int solves))
      ranks
  in
  let label rank = Printf.sprintf "defl_r%d_s%d" rank solves in
  let solve_rows =
    {
      kernel = "cg_deflate";
      n;
      geometry = Printf.sprintf "undeflated_s%d" solves;
      ns_per_op = t_undefl /. float_of_int solves;
      speedup = 1.0;
    }
    :: List.map
         (fun (rank, _, t_defl, _) ->
           {
             kernel = "cg_deflate";
             n;
             geometry = label rank;
             ns_per_op = t_defl /. float_of_int solves;
             speedup = t_undefl /. t_defl;
           })
         per_rank
  in
  (* mean CG iterations per solve (ns_per_op column holds the count) *)
  let iter_rows =
    {
      kernel = "cg_deflate_iters";
      n;
      geometry = "undeflated";
      ns_per_op = iters_undefl;
      speedup = 1.0;
    }
    :: List.map
         (fun (rank, _, _, it) ->
           {
             kernel = "cg_deflate_iters";
             n;
             geometry = Printf.sprintf "defl_r%d" rank;
             ns_per_op = it;
             speedup = iters_undefl /. it;
           })
         per_rank
  in
  (* setup cost and measured break-even: ns_per_op is the Lanczos
     build for the setup rows and the break-even solve count for the
     breakeven rows; speedup holds the campaign slice / break-even
     ratio (> 1: the setup pays for itself inside this campaign) *)
  let amortize_rows =
    List.concat_map
      (fun (rank, t_setup, t_defl, _) ->
        let be =
          Machine.Perf_model.deflation_break_even_solves
            ~setup_s:(t_setup /. 1e9)
            ~t_undeflated_s:(t_undefl /. float_of_int solves /. 1e9)
            ~t_deflated_s:(t_defl /. float_of_int solves /. 1e9)
        in
        [
          {
            kernel = "cg_deflate_setup";
            n;
            geometry = Printf.sprintf "defl_r%d" rank;
            ns_per_op = t_setup;
            speedup = 1.0;
          };
          {
            kernel = "cg_deflate_breakeven";
            n;
            geometry = Printf.sprintf "defl_r%d" rank;
            ns_per_op = be;
            speedup = float_of_int solves /. be;
          };
        ])
      per_rank
  in
  (* the model's view: Ritz-compressed condition number and the
     classical sqrt-kappa iteration ratio it predicts (ns_per_op holds
     the modeled kappa_deflated, speedup the predicted iteration
     speedup 1/ratio) *)
  let lambda_max = diag.(n - 1) in
  let kappa = lambda_max /. diag.(0) in
  let model_rows =
    List.map
      (fun rank ->
        let cut = diag.(min rank (n - 1)) in
        let kd =
          Machine.Perf_model.deflated_condition ~lambda_max ~lambda_cut:cut
        in
        {
          kernel = "cg_deflate_model";
          n;
          geometry = Printf.sprintf "defl_r%d_kappa" rank;
          ns_per_op = kd;
          speedup =
            1.
            /. Machine.Perf_model.deflation_iteration_ratio ~kappa
                 ~kappa_deflated:kd;
        })
      ranks
  in
  (* the rank tuner's winner for this operator, re-measured as a whole
     campaign — Lanczos setup inside the timed region, amortization
     included — against the undeflated campaign *)
  let tuned_rows =
    let tuner = Autotune.Tuner.create () in
    let winner, plan =
      Autotune.Variants.tune_deflation tuner ~solves ~tol:1e-10 ~apply ~n
        ~signature:"bench"
    in
    let run_winner () =
      let deflate =
        if plan.Autotune.Variants.rank = 0 then None
        else
          Some
            (Solver.Deflate.of_lanczos ~config_hash:0
               (Solver.Lanczos.lowest ~tol:1e-6
                  ~rank:plan.Autotune.Variants.rank ~apply ~n
                  ~rng:(Util.Rng.create (7 + plan.Autotune.Variants.rank))
                  ()))
      in
      campaign ?deflate ()
    in
    let t_winner = time_ns run_winner in
    [
      {
        kernel = "cg_deflate_tuned";
        n;
        geometry = winner;
        ns_per_op = t_winner /. float_of_int solves;
        speedup = t_undefl /. t_winner;
      };
    ]
  in
  let rows = solve_rows @ iter_rows @ amortize_rows @ model_rows @ tuned_rows in
  Bench_json.print_table rows;
  Bench_json.write ~file:out
    ~replacing:
      [
        "cg_deflate";
        "cg_deflate_iters";
        "cg_deflate_setup";
        "cg_deflate_breakeven";
        "cg_deflate_model";
        "cg_deflate_tuned";
      ]
    rows;
  Printf.printf
    "%d rows -> %s (iters rows: mean CG iterations per solve;\n\
     setup/breakeven rows: Lanczos build ns and the measured solve count\n\
     after which it has paid for itself; every campaign runs the same %d\n\
     right-hand sides)\n"
    (List.length rows) out solves;
  Pool.shutdown_shared ()
