(* Multicore pool experiment: serial vs pooled axpy/norm2/hop across
   launch geometries, with machine-readable output. Every row lands in
   BENCH_kernels.json (kernel, n, geometry, ns/op, speedup vs serial)
   so the perf trajectory is tracked across PRs.

   Honesty note: the serial baseline is the d=1 pool (inline, chunk by
   chunk — the exact code path the pooled kernels reduce to), and the
   pooled geometries are measured whatever the core count. On a
   single-core box the pooled rows record the fork/join overhead as a
   speedup below 1x; speedups above 1x appear only where the hardware
   provides the lanes. *)

module Field = Linalg.Field
module Pool = Util.Pool
module Ascii = Util.Ascii

type row = Bench_json.row = {
  kernel : string;
  n : int;
  geometry : string;  (* "serial" or "d<domains>_c<chunk>" *)
  ns_per_op : float;
  speedup : float;  (* vs the serial row of the same (kernel, n) *)
}

let time_ns ?(repeats = 9) f =
  f ();
  (* warm-up: page in buffers, wake the pool *)
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9

(* Geometries to sweep: what the tuner would search, but never empty —
   on a single-core cap we still measure d=2 so the overhead of a
   mis-deployed pool is on record. *)
let geometries ~n =
  let dmax = max 2 (Domain.recommended_domain_count ()) in
  Autotune.Variants.pool_geometries ~max_domains:dmax ~n ()

let bench_kernel ~kernel ~n ~serial ~pooled =
  let t_serial = time_ns serial in
  let base = { kernel; n; geometry = "serial"; ns_per_op = t_serial; speedup = 1. } in
  base
  :: List.map
       (fun (d, c) ->
         let t = time_ns (fun () -> pooled (Pool.shared ~domains:d) c) in
         {
           kernel;
           n;
           geometry = Printf.sprintf "d%d_c%d" d c;
           ns_per_op = t;
           speedup = t_serial /. t;
         })
       (geometries ~n)

let run ?(out = "BENCH_kernels.json") () =
  Ascii.banner "multicore pool: serial vs pooled kernels across geometries";
  let n = 1 lsl 20 in
  let x = Field.create n and y = Field.create n in
  Field.gaussian (Util.Rng.create 11) x;
  Field.gaussian (Util.Rng.create 12) y;
  let serial_pool = Pool.shared ~domains:1 in
  let axpy_rows =
    bench_kernel ~kernel:"axpy" ~n
      ~serial:(fun () -> Field.axpy_with serial_pool 1.000001 x y)
      ~pooled:(fun p c -> Field.axpy_with p ~chunk:c 1.000001 x y)
  in
  let norm2_rows =
    bench_kernel ~kernel:"norm2" ~n
      ~serial:(fun () -> ignore (Field.norm2_with serial_pool x))
      ~pooled:(fun p c -> ignore (Field.norm2_with p ~chunk:c x))
  in
  let geom = Lattice.Geometry.create [| 8; 8; 8; 8 |] in
  let gauge = Lattice.Gauge.warm geom (Util.Rng.create 13) ~eps:0.3 in
  let w = Dirac.Wilson.of_geometry geom gauge in
  let vol = Lattice.Geometry.volume geom in
  let nf = vol * Dirac.Wilson.floats_per_site in
  let src = Field.create nf and dst = Field.create nf in
  Field.gaussian (Util.Rng.create 14) src;
  let hop_rows =
    (* the hop's parallel axis is sites, so its geometry sweep uses a
       site-count chunk floor *)
    let t_serial = time_ns (fun () -> Dirac.Wilson.hop_sites w ~src ~dst ()) in
    {
      kernel = "wilson_hop";
      n = vol;
      geometry = "serial";
      ns_per_op = t_serial;
      speedup = 1.;
    }
    :: List.map
         (fun (d, c) ->
           let t =
             time_ns (fun () ->
                 Dirac.Wilson.hop_with (Pool.shared ~domains:d) ~chunk:c w ~src
                   ~dst)
           in
           {
             kernel = "wilson_hop";
             n = vol;
             geometry = Printf.sprintf "d%d_c%d" d c;
             ns_per_op = t;
             speedup = t_serial /. t;
           })
         (Autotune.Variants.pool_geometries
            ~max_domains:(max 2 (Domain.recommended_domain_count ()))
            ~chunk_floor:64 ~n:vol ())
  in
  (* the tuner's chosen winner for this shape, re-measured: the row
     every "the autotuner made it faster" claim is checked against.
     The candidate space always contains the serial baseline, so the
     winner's speedup is >= 1.0 up to timing noise (asserted by the
     tuner-honesty regression test). *)
  let tuned_rows =
    let tuner = Autotune.Tuner.create () in
    let winner, f = Autotune.Variants.tune_axpy tuner ~n in
    let t_serial = time_ns (fun () -> Autotune.Variants.axpy_plain 1.000001 x y)
    and t_winner = time_ns (fun () -> f 1.000001 x y) in
    [
      {
        kernel = "axpy_tuned";
        n;
        geometry = winner;
        ns_per_op = t_winner;
        speedup = t_serial /. t_winner;
      };
    ]
  in
  let rows = axpy_rows @ norm2_rows @ hop_rows @ tuned_rows in
  Bench_json.print_table rows;
  Bench_json.write ~file:out
    ~replacing:[ "axpy"; "norm2"; "wilson_hop"; "axpy_tuned" ]
    rows;
  Printf.printf
    "%d rows -> %s (recommended_domain_count = %d; pooled speedups need the\n\
     hardware lanes — on a single core the rows record the fork/join cost)\n"
    (List.length rows) out
    (Domain.recommended_domain_count ());
  (* don't leave idle workers taxing the GC of later experiments *)
  Pool.shutdown_shared ()
