(* Fused BLAS-1 solver kernel experiment: single-pass update+reduce
   kernels (Linalg.Fused) vs the unfused sequences they replace, at
   kernel level and whole-solve level, plus the fusion autotuner's
   chosen winner. Rows merge into BENCH_kernels.json alongside the
   pool experiment's.

   The interesting comparison is serial fused vs serial unfused: same
   flops (up to the monitor dot), same arithmetic, fewer memory
   sweeps — on a streaming-bound vector the fused kernel's win is the
   5→2 sweep story the Perf_model prices. Geometry rows record the
   pooled fused kernels too; on a single-core box they carry the usual
   honest fork/join sub-1x. *)

module Field = Linalg.Field
module Fused = Linalg.Fused
module Pool = Util.Pool
module Ascii = Util.Ascii
open Bench_json

let time_ns = Pool_bench.time_ns

let mk n seed =
  let v = Field.create n in
  Field.gaussian (Util.Rng.create seed) v;
  v

let run ?(out = "BENCH_kernels.json") () =
  Ascii.banner "fused BLAS-1 solver kernels: single-pass vs unfused sweeps";
  let n = 1 lsl 20 in
  let p = mk n 21 and ap = mk n 22 and x = mk n 23 and r = mk n 24 in
  (* tiny alpha/beta so repeated timing passes keep the data finite *)
  let alpha = 1e-3 and beta = 0.5 in
  let kernel_rows kernel ~unfused ~fused ~fused_pooled =
    let t_unfused = time_ns unfused in
    let t_fused = time_ns fused in
    let base =
      { kernel; n; geometry = "unfused_serial"; ns_per_op = t_unfused;
        speedup = 1. }
    in
    let fused_row =
      { kernel; n; geometry = "fused_serial"; ns_per_op = t_fused;
        speedup = t_unfused /. t_fused }
    in
    base :: fused_row
    :: List.map
         (fun (d, c) ->
           let t = time_ns (fun () -> fused_pooled (Pool.shared ~domains:d) c) in
           {
             kernel;
             n;
             geometry = Printf.sprintf "fused_d%d_c%d" d c;
             ns_per_op = t;
             speedup = t_unfused /. t;
           })
         (Autotune.Variants.pool_geometries
            ~max_domains:(max 2 (Domain.recommended_domain_count ()))
            ~n ())
  in
  (* cg_update vs the three kernels it fuses *)
  let cg_update_rows =
    kernel_rows "cg_update"
      ~unfused:(fun () ->
        Field.axpy alpha p x;
        Field.axpy (-.alpha) ap r;
        ignore (Field.norm2 r : float))
      ~fused:(fun () -> ignore (Fused.cg_update alpha p ap x r : float))
      ~fused_pooled:(fun pool c ->
        ignore (Fused.cg_update_with pool ~chunk:c alpha p ap x r : float))
  in
  (* xpay_dot vs xpay + dot_re *)
  let xpay_dot_rows =
    kernel_rows "xpay_dot"
      ~unfused:(fun () ->
        Field.xpay r beta p;
        ignore (Field.dot_re p r : float))
      ~fused:(fun () -> ignore (Fused.xpay_dot r beta p r : float))
      ~fused_pooled:(fun pool c ->
        ignore (Fused.xpay_dot_with pool ~chunk:c r beta p r : float))
  in
  (* axpy_norm2 vs axpy + norm2 *)
  let axpy_norm2_rows =
    kernel_rows "axpy_norm2"
      ~unfused:(fun () ->
        Field.axpy alpha p r;
        ignore (Field.norm2 r : float))
      ~fused:(fun () -> ignore (Fused.axpy_norm2 alpha p r : float))
      ~fused_pooled:(fun pool c ->
        ignore (Fused.axpy_norm2_with pool ~chunk:c alpha p r : float))
  in
  (* caxpy_norm2 vs caxpy + norm2 *)
  let caxpy_norm2_rows =
    kernel_rows "caxpy_norm2"
      ~unfused:(fun () ->
        Field.caxpy (1e-3, -1e-3) p r;
        ignore (Field.norm2 r : float))
      ~fused:(fun () -> ignore (Fused.caxpy_norm2 (1e-3, -1e-3) p r : float))
      ~fused_pooled:(fun pool c ->
        ignore (Fused.caxpy_norm2_with pool ~chunk:c (1e-3, -1e-3) p r : float))
  in
  (* whole-solve: CG against a diagonal SPD operator big enough that
     the BLAS-1 tail is the entire cost — the end-to-end view of the
     same sweep reduction. Identical trajectories by construction, so
     all three columns run the same iteration count. The tail-fused
     column rides the p·Ap reduction on the operator's own sweep
     through the canonical 2048-float blocks (Cg.solve's apply_dot),
     closing the 3→2 sweep gap the separate-dot fallback keeps. *)
  let solve_rows =
    let ns = 1 lsl 18 in
    let apply (src : Field.t) (dst : Field.t) =
      for i = 0 to ns - 1 do
        Bigarray.Array1.unsafe_set dst i
          ((1.5 +. (float_of_int (i land 63) /. 100.))
          *. Bigarray.Array1.unsafe_get src i)
      done
    in
    let block = Field.reduce_block in
    let apply_dot (src : Field.t) (dst : Field.t) =
      let n_blocks = (ns + block - 1) / block in
      let partials = Array.make n_blocks 0. in
      for bi = 0 to n_blocks - 1 do
        let lo = bi * block and hi = min ns ((bi + 1) * block) in
        let acc = ref 0. in
        for i = lo to hi - 1 do
          Bigarray.Array1.unsafe_set dst i
            ((1.5 +. (float_of_int (i land 63) /. 100.))
            *. Bigarray.Array1.unsafe_get src i);
          acc :=
            !acc
            +. (Bigarray.Array1.unsafe_get src i
               *. Bigarray.Array1.unsafe_get dst i)
        done;
        partials.(bi) <- !acc
      done;
      let acc = ref 0. in
      Array.iter (fun v -> acc := !acc +. v) partials;
      !acc
    in
    let b = mk ns 25 in
    let solve ?apply_dot fused () =
      ignore
        (Solver.Cg.solve ~fused ?apply_dot ~apply ~b ~tol:1e-8 ~max_iter:200
           ~flops_per_apply:(float_of_int (2 * ns))
           ()
          : Field.t * Solver.Cg.stats)
    in
    let t_unfused = time_ns ~repeats:3 (solve false) in
    let t_fused = time_ns ~repeats:3 (solve true) in
    let t_tail = time_ns ~repeats:3 (solve ~apply_dot true) in
    [
      { kernel = "cg_solve"; n = ns; geometry = "unfused_serial";
        ns_per_op = t_unfused; speedup = 1. };
      { kernel = "cg_solve"; n = ns; geometry = "fused_serial";
        ns_per_op = t_fused; speedup = t_unfused /. t_fused };
      { kernel = "cg_solve"; n = ns; geometry = "tailfused_serial";
        ns_per_op = t_tail; speedup = t_unfused /. t_tail };
    ]
  in
  (* the tail-fused stencil itself: Wilson hop with the p·Ap-style dot
     riding its closing sweep vs hop followed by a separate dot_re —
     the kernel-level view of the PLAN005 gap closing *)
  let hop_tail_rows =
    let geom = Lattice.Geometry.create [| 8; 8; 8; 8 |] in
    let gauge = Lattice.Gauge.warm geom (Util.Rng.create 26) ~eps:0.3 in
    let w = Dirac.Wilson.of_geometry geom gauge in
    let vol = Lattice.Geometry.volume geom in
    let nf = vol * Dirac.Wilson.floats_per_site in
    let src = mk nf 27 and dst = Field.create nf in
    let tail = Fused.tail ~dot:src () in
    let t_unfused =
      time_ns (fun () ->
          Dirac.Wilson.hop w ~src ~dst;
          ignore (Field.dot_re src dst : float))
    in
    let t_fused =
      time_ns (fun () ->
          ignore (Dirac.Wilson.hop_tail w ~src ~dst ~tail : float))
    in
    [
      { kernel = "wilson_hop_tail"; n = vol; geometry = "hop_then_dot";
        ns_per_op = t_unfused; speedup = 1. };
      { kernel = "wilson_hop_tail"; n = vol; geometry = "tailfused";
        ns_per_op = t_fused; speedup = t_unfused /. t_fused };
    ]
  in
  (* the fusion tuner's chosen winner for this shape, re-measured
     against the always-present serial-unfused baseline *)
  let tuned_rows =
    let tuner = Autotune.Tuner.create () in
    (* every candidate through the static plan analyzer before the
       tuner prices (and caches) anything *)
    let lint ~mode ~geometry =
      match Check.Plan_check.lint_fusion ~n ~mode ~geometry with
      | [] -> None
      | d :: _ -> Some (Check.Diagnostic.to_string d)
    in
    let winner, plan = Autotune.Variants.tune_fusion ~lint tuner ~n in
    let baseline =
      { Autotune.Variants.mode = Linalg.Fused.Unfused; geometry = None }
    in
    let t_base =
      time_ns (fun () ->
          ignore (Autotune.Variants.run_fusion_plan baseline ~p ~ap ~x ~r : float))
    in
    let t_winner =
      time_ns (fun () ->
          ignore (Autotune.Variants.run_fusion_plan plan ~p ~ap ~x ~r : float))
    in
    [
      {
        kernel = "cg_blas1_tuned";
        n;
        geometry = winner;
        ns_per_op = t_winner;
        speedup = t_base /. t_winner;
      };
    ]
  in
  let rows =
    cg_update_rows @ xpay_dot_rows @ axpy_norm2_rows @ caxpy_norm2_rows
    @ solve_rows @ hop_tail_rows @ tuned_rows
  in
  Bench_json.print_table rows;
  Bench_json.write ~file:out
    ~replacing:
      [
        "cg_update"; "xpay_dot"; "axpy_norm2"; "caxpy_norm2"; "cg_solve";
        "wilson_hop_tail"; "cg_blas1_tuned";
      ]
    rows;
  Printf.printf
    "%d rows -> %s (tail-fused vs unfused is the 5->2 sweep trade; pooled\n\
     rows need hardware lanes to beat serial)\n"
    (List.length rows) out;
  Pool.shutdown_shared ()
