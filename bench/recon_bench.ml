(* Compressed gauge-link experiment: the Wilson hop streaming its
   links through each Su3_codec (full18 bit-copies, recon12 rebuilding
   the third row, recon8 rebuilding six of nine entries), the modeled
   link-traffic drop those codecs buy, and the codec × batch-width ×
   pool-geometry autotuner's chosen winner. Rows merge into
   BENCH_kernels.json alongside the pool/fused/multirhs experiments'.

   Fairness: every measured point processes the same KMAX right-hand
   sides through width-4 sub-batches, so a compressed codec is only
   faster by the link bytes it avoids streaming, never by doing less
   work — and it pays its reconstruction flops on the whole batch.
   The gauge field is a hot (Haar-random) start: recon8's 8-real
   parameterization is singular on near-identity links (a cold/warm
   field raises Su3_codec.Degenerate by design). The model rows record
   Perf_model.link_bytes_per_site_recon (1152 -> 768 -> 512 bytes per
   site) and its k = 4 composition with the amortized multi-RHS
   stream — the ceiling a streaming-bound hop chases. *)

module Field = Linalg.Field
module Codec = Linalg.Su3_codec
module Wilson = Dirac.Wilson
module Pool = Util.Pool
module Ascii = Util.Ascii
open Bench_json

let time_ns = Pool_bench.time_ns
let kmax = 8
let kbench = 4

let mk n seed =
  let v = Field.create n in
  Field.gaussian (Util.Rng.create seed) v;
  v

let run ?(out = "BENCH_kernels.json") () =
  Ascii.banner "compressed gauge links: recon-12/8 vs full-18";
  let geom = Lattice.Geometry.create [| 8; 8; 8; 8 |] in
  let gauge = Lattice.Gauge.random geom (Util.Rng.create 33) in
  let vol = Lattice.Geometry.volume geom in
  let nf = vol * Wilson.floats_per_site in
  let srcs = Array.init kmax (fun i -> mk nf (60 + i)) in
  let dsts = Array.init kmax (fun _ -> Field.create nf) in
  let serial = Pool.shared ~domains:1 in
  (* one operator per codec, same geometry and gauge: each owns its
     packed store, the stencil tables are identical *)
  let ops = List.map (fun c -> (c, Wilson.of_geometry ~recon:c geom gauge)) Codec.all in
  let hop_with w () =
    let off = ref 0 in
    while !off < kmax do
      Wilson.hop_multi_with serial w
        ~srcs:(Array.sub srcs !off kbench)
        ~dsts:(Array.sub dsts !off kbench);
      off := !off + kbench
    done
  in
  let t_full = time_ns (hop_with (List.assoc Codec.Full18 ops)) in
  let hop_rows =
    List.map
      (fun (c, w) ->
        let t = if c = Codec.Full18 then t_full else time_ns (hop_with w) in
        {
          kernel = "wilson_hop_recon";
          n = vol;
          geometry = Printf.sprintf "%s_k%d_serial" (Codec.name c) kbench;
          ns_per_op = t;
          speedup = t_full /. t;
        })
      ops
  in
  (* the model's view: per-site link bytes at each codec (the pure
     stream drop, 1152 -> 768 -> 512) and the k-amortized bytes/site
     of the width-kbench batch (ns_per_op holds modeled bytes, the
     speedup column the traffic ratio's inverse) *)
  let model_rows =
    List.concat_map
      (fun c ->
        let lb = Machine.Perf_model.link_bytes_per_site_recon ~recon:c in
        let full = Machine.Perf_model.link_bytes_per_site_recon ~recon:Codec.Full18 in
        [
          {
            kernel = "wilson_hop_recon_model";
            n = vol;
            geometry = Printf.sprintf "%s_links" (Codec.name c);
            ns_per_op = lb;
            speedup = full /. lb;
          };
          {
            kernel = "wilson_hop_recon_model";
            n = vol;
            geometry = Printf.sprintf "%s_k%d" (Codec.name c) kbench;
            ns_per_op =
              Machine.Perf_model.mrhs_bytes_per_site_recon ~recon:c ~k:kbench;
            speedup =
              1. /. Machine.Perf_model.recon_traffic_ratio ~recon:c ~k:kbench;
          };
        ])
      Codec.all
  in
  (* the codec x width x geometry tuner's chosen winner for this
     shape, re-measured against the uncompressed width-kbench serial
     baseline above *)
  let tuned_rows =
    let tuner = Autotune.Tuner.create () in
    let winner, plan =
      Autotune.Variants.tune_hop_recon tuner geom gauge ~srcs ~dsts
        ~signature:"bench"
    in
    let w = List.assoc plan.Autotune.Variants.recon ops in
    let run_plan () =
      let k = plan.Autotune.Variants.rk in
      let off = ref 0 in
      while !off < kmax do
        let ss = Array.sub srcs !off k and ds = Array.sub dsts !off k in
        (match plan.Autotune.Variants.rgeometry with
        | None -> Wilson.hop_multi_with serial w ~srcs:ss ~dsts:ds
        | Some (d, c) ->
          Wilson.hop_multi_with (Pool.shared ~domains:d) ~chunk:c w ~srcs:ss
            ~dsts:ds);
        off := !off + k
      done
    in
    let t_winner = time_ns run_plan in
    [
      {
        kernel = "wilson_hop_recon_tuned";
        n = vol;
        geometry = winner;
        ns_per_op = t_winner;
        speedup = t_full /. t_winner;
      };
    ]
  in
  let rows = hop_rows @ model_rows @ tuned_rows in
  Bench_json.print_table rows;
  Bench_json.write ~file:out
    ~replacing:
      [ "wilson_hop_recon"; "wilson_hop_recon_model"; "wilson_hop_recon_tuned" ]
    rows;
  Printf.printf
    "%d rows -> %s (model rows: modeled bytes/site, links-only and\n\
     k%d-amortized; measured rows process the same %d RHS at every codec)\n"
    (List.length rows) out kbench kmax;
  Pool.shutdown_shared ()
