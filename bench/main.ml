(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md experiment index and EXPERIMENTS.md for the recorded
   paper-vs-measured comparison).

   Usage:
     dune exec bench/main.exe              run everything
     dune exec bench/main.exe -- fig3 fig5 run selected experiments
     dune exec bench/main.exe -- list      list experiment names *)

let experiments =
  [
    ("table1", "Table I: performance attributes", fun () -> Tables.table1 ());
    ("table2", "Table II: systems", fun () -> Tables.table2 ());
    ("table3", "Table III: software inventory", fun () -> Tables.table3 ());
    ("fig1", "Fig 1: FH vs traditional gA", fun () -> Fig1.run ());
    ("fig2", "Fig 2: workflow (real run)", fun () -> Fig2.run ());
    ("fig3", "Fig 3: strong scaling 48^3x64", fun () -> Scaling.fig3 ());
    ("fig4", "Fig 4: strong scaling Summit 96^3x144", fun () -> Scaling.fig4 ());
    ("fig5", "Fig 5: weak scaling Sierra", fun () -> Scaling.fig5 ());
    ("fig6", "Fig 6: weak scaling Summit/METAQ", fun () -> Scaling.fig6 ());
    ("fig7", "Fig 7: solver performance histogram", fun () -> Scaling.fig7 ());
    ("speedup", "Sec VII: machine-to-machine speedup", fun () -> Scaling.speedup ());
    ("metaq", "Sec V: bundling vs METAQ vs mpi_jm", fun () -> Jobs.metaq ());
    ("startup", "Sec V: startup at scale", fun () -> Jobs.startup ());
    ("placement", "Sec VII: GPU-granular placement", fun () -> Jobs.placement ());
    ("autotune", "Sec IV-V: autotuning demos", fun () -> Jobs.autotune ());
    ("kernels", "measured OCaml kernels (Bechamel)", fun () -> Kernels.run ());
    ("pool", "multicore pool: serial vs pooled kernels", fun () -> Pool_bench.run ());
    ("fused", "fused BLAS-1 solver kernels vs unfused sweeps", fun () -> Fused_bench.run ());
    ("multirhs", "batched multi-RHS engine vs single-RHS path", fun () -> Multirhs_bench.run ());
    ("recon", "compressed gauge links: recon-12/8 vs full-18", fun () -> Recon_bench.run ());
    ("deflate", "low-mode deflated CG vs undeflated", fun () -> Deflate_bench.run ());
    ("ablation", "design-decision ablations", fun () -> Kernels.ablation ());
    ("solvers", "solver ablations + critical slowing", fun () -> Kernels.solver_ablation ());
    ("physics", "m_res, FH economics, mesons, gradient flow", fun () -> Physics_exp.run ());
    ("failures", "lump failure propagation", fun () -> Jobs.failures ());
    ("pipeline", "contraction co-scheduling", fun () -> Jobs.pipeline ());
  ]

let () =
  let args =
    Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--")
  in
  match args with
  | [ "list" ] ->
    List.iter (fun (name, desc, _) -> Printf.printf "%-10s %s\n" name desc) experiments
  | [] ->
    print_endline
      "Reproducing every table and figure of 'Simulating the weak death of\n\
       the neutron in a femtoscale universe with near-Exascale computing'\n\
       (Berkowitz et al., SC18). Real lattice QCD at laptop scale; CORAL\n\
       machines and job management simulated (see DESIGN.md).";
    List.iter (fun (_, _, f) -> f ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, _, f) -> f ()
        | None ->
          Printf.eprintf "unknown experiment '%s' (try 'list')\n" name;
          exit 1)
      names
