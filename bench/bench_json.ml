(* Shared machine-readable output for the kernel benchmarks. All
   experiments append to one BENCH_kernels.json so the perf trajectory
   is tracked across PRs; a rerun of one experiment must not clobber
   the rows another experiment wrote. The file is one JSON object per
   line, and merging works line-wise: an experiment replaces exactly
   the kernels it re-measured and preserves everyone else's rows
   verbatim. *)

type row = {
  kernel : string;
  n : int;
  geometry : string;  (* "serial", "d<d>_c<c>", "fused_serial", ... *)
  ns_per_op : float;
  speedup : float;  (* vs the baseline row of the same (kernel, n) *)
}

let row_line r =
  Printf.sprintf
    "  {\"kernel\": %S, \"n\": %d, \"geometry\": %S, \"ns_per_op\": %.1f, \
     \"speedup_vs_serial\": %.3f}"
    r.kernel r.n r.geometry r.ns_per_op r.speedup

let kernel_of_line line =
  let tag = "\"kernel\": \"" in
  let tl = String.length tag in
  let ll = String.length line in
  let rec find i =
    if i + tl > ll then None
    else if String.sub line i tl = tag then begin
      let j = ref (i + tl) in
      while !j < ll && line.[!j] <> '"' do
        incr j
      done;
      Some (String.sub line (i + tl) (!j - i - tl))
    end
    else find (i + 1)
  in
  find 0

(* Rows already in [file] whose kernel is not being replaced,
   normalized (no trailing comma). Array brackets and blank lines have
   no "kernel" key and drop out naturally. *)
let preserved_lines ~file ~replacing =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> ());
    List.filter_map
      (fun l ->
        match kernel_of_line l with
        | Some k when not (List.mem k replacing) ->
          let l = String.trim l in
          let l =
            if String.length l > 0 && l.[String.length l - 1] = ',' then
              String.sub l 0 (String.length l - 1)
            else l
          in
          Some ("  " ^ l)
        | _ -> None)
      (List.rev !lines)
  end

(* Write [rows] into [file], replacing any existing rows of the
   kernels in [replacing] and preserving all others. The kernels
   actually present in [rows] always replace their old rows, whether
   or not the caller listed them — otherwise a rerun whose [replacing]
   list lagged behind its measurements would duplicate rows instead of
   overwriting them. The merged lines are emitted in sorted order, so
   the file's row order is a function of its contents alone: reruns
   and experiment orderings diff cleanly instead of reshuffling. *)
let write ~file ~replacing rows =
  let replacing =
    List.sort_uniq compare (replacing @ List.map (fun r -> r.kernel) rows)
  in
  let all =
    List.sort compare (preserved_lines ~file ~replacing @ List.map row_line rows)
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      let last = List.length all - 1 in
      List.iteri
        (fun i l -> output_string oc (l ^ if i = last then "\n" else ",\n"))
        all;
      output_string oc "]\n")

let print_table rows =
  Util.Ascii.print_table
    ~header:[ "kernel"; "n"; "geometry"; "ns/op"; "speedup vs serial" ]
    (List.map
       (fun r ->
         [
           r.kernel;
           string_of_int r.n;
           r.geometry;
           Printf.sprintf "%.0f" r.ns_per_op;
           Printf.sprintf "%.2fx" r.speedup;
         ])
       rows)
