(* Job management walkthrough: the mpi_jm story of Sec. V.

     dune exec examples/job_manager.exe

   Builds a heterogeneous campaign of propagator and contraction tasks,
   compares the three scheduling strategies in the discrete-event
   simulator, plans a lump-partitioned startup for a large allocation,
   and shows GPU-granular placement on Summit-shaped nodes. *)

module Sched = Jobman.Schedulers
module Cluster = Jobman.Cluster
module Task = Jobman.Task
module Ascii = Util.Ascii

let () =
  let rng = Util.Rng.create 8_675_309 in

  (* a campaign: 256 propagator solves (4 nodes each, ~30 min, +-15%)
     with one CPU contraction batch per four solves *)
  let tasks = Task.campaign ~spread:0.15 ~contraction_every:4 ~n:256 ~nodes:4 ~duration:1800. rng in
  Printf.printf "campaign: %d tasks, %s of node-work\n" (List.length tasks)
    (Ascii.seconds (Task.total_work tasks /. 64.));

  (* pre-flight: run the static campaign verifier before spending any
     (simulated) allocation — the same pass `neutron_check` runs *)
  let preflight =
    Check.campaign ~n_nodes:64
      (List.map
         (fun (t : Task.t) ->
           {
             Jobman.Pipeline.id = t.Task.id;
             nodes = t.Task.nodes;
             duration = t.Task.base_duration;
             deps = [];
             cpu_only = (t.Task.kind = Task.Contraction);
           })
         tasks)
  in
  Printf.printf "pre-flight check: %d error(s), %d warning(s)\n"
    (Check.Diagnostic.count_errors preflight)
    (Check.Diagnostic.count_warnings preflight);
  if Check.Diagnostic.has_errors preflight then begin
    List.iter
      (fun d -> print_endline ("  " ^ Check.Diagnostic.to_string d))
      preflight;
    exit 1
  end;

  let mk () =
    Cluster.create ~n_nodes:64 ~gpus_per_node:4 ~cpus_per_node:40 ~jitter:0.05
      (Util.Rng.create 1)
  in
  let outcomes =
    [
      Sched.naive ~cluster:(mk ()) ~tasks;
      Sched.metaq ~cluster:(mk ()) ~tasks ();
      Sched.mpi_jm ~block_nodes:8 ~cluster:(mk ()) ~tasks ();
    ]
  in
  Ascii.print_table
    ~header:[ "strategy"; "makespan"; "utilization"; "idle" ]
    (List.map
       (fun o ->
         [
           o.Sched.strategy;
           Ascii.seconds o.Sched.makespan;
           Printf.sprintf "%.1f%%" (100. *. o.Sched.utilization);
           Printf.sprintf "%.1f%%" (100. *. o.Sched.idle_fraction);
         ])
       outcomes);

  (* startup planning for a big allocation *)
  print_endline "\nstartup plan for a 2048-node allocation (lumps of 128):";
  let s = Jobman.Startup.mpi_jm ~nodes:2048 ~lump_nodes:128 rng in
  Printf.printf
    "  %d lumps launch in parallel, %d failed (dropped), %d nodes usable,\n\
     \  up and running in %s (monolithic mpirun: %s, with restart risk)\n"
    s.Jobman.Startup.lumps s.Jobman.Startup.lumps_failed
    s.Jobman.Startup.usable_nodes
    (Ascii.seconds s.Jobman.Startup.total_s)
    (Ascii.seconds (fst (Jobman.Startup.monolithic Jobman.Startup.default ~nodes:2048)));

  (* GPU-granular placement *)
  print_endline "\nplacement: three 16-GPU jobs on 8 six-GPU nodes (48 GPUs):";
  (match Jobman.Placement.place ~n_jobs:3 ~gpus_per_job:16 ~nodes:8 ~gpus_per_node:6 with
  | None -> print_endline "  does not fit"
  | Some ps ->
    List.iter
      (fun p ->
        Printf.printf "  job %d: %d nodes x %d GPUs (efficiency %.2f)\n"
          (p.Jobman.Placement.job + 1) p.Jobman.Placement.nodes_used
          p.Jobman.Placement.gpus_per_node_used p.Jobman.Placement.efficiency)
      ps);
  (* dependency-aware pipeline: contractions depend on their batch of
     propagators; verify the DAG (cycles, dangling deps, feasibility,
     DES deadlock replay), then compare scheduling modes *)
  print_endline "\nco-scheduled pipeline (contractions depend on their batch):";
  let ptasks =
    Jobman.Pipeline.campaign ~batch:4 ~n_props:64 ~prop_nodes:4 ~duration:1800.
      (Util.Rng.create 2)
  in
  (match Check.campaign ~n_nodes:64 ptasks with
  | [] -> print_endline "  DAG verified: no findings"
  | ds when not (Check.Diagnostic.has_errors ds) ->
    Printf.printf "  DAG verified: %d warning(s), no errors\n" (List.length ds)
  | ds ->
    List.iter (fun d -> print_endline ("  " ^ Check.Diagnostic.to_string d)) ds;
    exit 1);
  let separate, cosched = Jobman.Pipeline.compare_modes ~n_nodes:64 ~tasks:ptasks in
  List.iter
    (fun (o : Jobman.Pipeline.outcome) ->
      Printf.printf "  %-12s makespan %s, billed %s node-s (overhead %s)\n"
        o.Jobman.Pipeline.mode
        (Ascii.seconds o.Jobman.Pipeline.makespan)
        (Ascii.seconds o.Jobman.Pipeline.billed)
        (Ascii.seconds o.Jobman.Pipeline.contraction_overhead))
    [ separate; cosched ];

  print_endline "\nCPU co-scheduling: contractions ride on busy nodes' CPUs for free\n(mpi_jm absorbed all contraction tasks above without extra allocations)."
