(* Plan a production run on a CORAL-class machine.

     dune exec examples/scaling_study.exe -- --machine sierra --gpus 1024
     dune exec examples/scaling_study.exe -- --machine summit --lattice 96x96x96x144 --l5 20

   Uses the calibrated performance model and the communication-policy
   autotuner to answer: what is the best group size for propagator
   solves, which communication policy wins, and what does the machine
   sustain at a given scale? *)

module Spec = Machine.Spec
module PM = Machine.Perf_model

let machine_of_string = function
  | "titan" -> Ok Spec.titan
  | "ray" -> Ok Spec.ray
  | "sierra" -> Ok Spec.sierra
  | "summit" -> Ok Spec.summit
  | s -> Error (`Msg ("unknown machine: " ^ s))

let lattice_of_string s =
  match String.split_on_char 'x' s |> List.map int_of_string_opt with
  | [ Some a; Some b; Some c; Some d ] -> Ok [| a; b; c; d |]
  | _ -> Error (`Msg "lattice must look like 48x48x48x64")
  | exception _ -> Error (`Msg "lattice must look like 48x48x48x64")

let study machine dims l5 gpus =
  let p = PM.problem ~dims ~l5 in
  Printf.printf "machine: %s (%d nodes x %d GPUs), lattice %s x L5=%d\n\n"
    machine.Spec.name machine.Spec.nodes machine.Spec.gpus_per_node
    (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
    l5;
  (* strong scaling of a single solve; the coarse/fine columns show
     the halo-completion granularity axis the autotuner searches
     (per-face completion pipelined against boundary sub-stencils vs
     one update after all faces), the safe column the best race-free
     transport (no zero-copy aliasing), and the transport column which
     halo buffer management the winner uses *)
  print_endline "single-solve strong scaling (autotuned policy per point):";
  let ct = Autotune.Comm_tune.create () in
  let counts =
    List.filter (fun n -> n <= gpus)
      [ 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192 ]
  in
  let tf = function
    | None -> "-"
    | Some t -> Printf.sprintf "%.1f" t
  in
  Util.Ascii.print_table
    ~header:[ "GPUs"; "TFlops"; "coarse"; "fine"; "safe"; "% peak"; "policy"; "transport" ]
    (List.map
       (fun (row : Autotune.Comm_tune.survey_row) ->
         [
           string_of_int row.Autotune.Comm_tune.n_gpus;
           Printf.sprintf "%.1f" row.Autotune.Comm_tune.tflops;
           tf row.Autotune.Comm_tune.coarse_tflops;
           tf row.Autotune.Comm_tune.fine_tflops;
           tf row.Autotune.Comm_tune.safe_tflops;
           (match
              Autotune.Comm_tune.pick ct machine p
                ~n_gpus:row.Autotune.Comm_tune.n_gpus
            with
           | Some (_, r) -> Printf.sprintf "%.1f" r.PM.percent_peak
           | None -> "-");
           Machine.Policy.name row.Autotune.Comm_tune.winner;
           Machine.Transport.name row.Autotune.Comm_tune.transport;
         ])
       (Autotune.Comm_tune.survey ct machine p ~gpu_counts:counts));
  (* best group size: maximize whole-machine throughput = per-GPU
     efficiency at the group size (groups are independent) *)
  print_endline "\nper-GPU efficiency by group size (pick the knee for production):";
  let groups =
    List.filter
      (fun g -> g mod machine.Spec.gpus_per_node = 0 && g <= gpus)
      [ 4; 8; 16; 24; 32; 48; 64; 96; 128 ]
  in
  List.iter
    (fun g ->
      match PM.best_policy machine p ~n_gpus:g with
      | None -> ()
      | Some r ->
        let groups_avail = gpus / g in
        Printf.printf "  group %4d GPUs: %.3f TF/GPU -> %d groups, %.1f TFlops total\n"
          g r.PM.tflops_per_gpu groups_avail
          (r.PM.tflops_total *. float_of_int groups_avail))
    groups;
  (* sustained production estimate through the job manager *)
  (match
     List.filter_map
       (fun g ->
         Option.map (fun r -> (g, r.PM.tflops_per_gpu)) (PM.best_policy machine p ~n_gpus:g))
       groups
   with
  | [] -> ()
  | per_gpu ->
    let best_g, _ =
      List.fold_left (fun (bg, bv) (g, v) -> if v > bv then (g, v) else (bg, bv))
        (List.hd per_gpu) (List.tl per_gpu)
    in
    let campaign =
      Core.Campaign.create ~machine ~problem:p ~group_gpus:best_g
        ~stack:PM.Mvapich2 ()
    in
    let n_nodes = gpus / machine.Spec.gpus_per_node in
    let o =
      Core.Campaign.simulate ~scheduler:`Mpi_jm campaign ~n_nodes
        ~n_tasks:(4 * n_nodes / (best_g / machine.Spec.gpus_per_node))
    in
    Printf.printf
      "\nmpi_jm campaign on %d GPUs with %d-GPU groups: %.2f PFlops sustained\n\
       (utilization %.1f%%, %d tasks, makespan %s)\n"
      gpus best_g o.Core.Campaign.sustained_pflops
      (100. *. o.Core.Campaign.utilization)
      o.Core.Campaign.n_tasks
      (Util.Ascii.seconds o.Core.Campaign.makespan_s))

open Cmdliner

let machine_conv =
  Arg.conv (machine_of_string, fun fmt m -> Format.fprintf fmt "%s" m.Spec.name)

let machine_arg =
  Arg.(value & opt machine_conv Spec.sierra
       & info [ "machine"; "m" ] ~doc:"titan | ray | sierra | summit")

let lattice_conv =
  Arg.conv (lattice_of_string, fun fmt d ->
      Format.fprintf fmt "%s"
        (String.concat "x" (Array.to_list (Array.map string_of_int d))))

let lattice_arg =
  Arg.(value & opt lattice_conv [| 48; 48; 48; 64 |]
       & info [ "lattice" ] ~doc:"e.g. 48x48x48x64")

let l5_arg = Arg.(value & opt int 20 & info [ "l5" ] ~doc:"fifth-dimension extent")
let gpus_arg = Arg.(value & opt int 1024 & info [ "gpus"; "g" ] ~doc:"GPUs available")

let cmd =
  let term = Term.(const study $ machine_arg $ lattice_arg $ l5_arg $ gpus_arg) in
  Cmd.v (Cmd.info "scaling_study" ~doc:"plan a lattice campaign on a CORAL machine") term

let () = exit (Cmd.eval cmd)
